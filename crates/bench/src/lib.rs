//! Shared fixtures and reference implementations for the benchmarks.
//!
//! Besides scenario builders, this crate hosts the *exhaustive*
//! configuration search used by the greedy-vs-optimal ablation: the paper
//! argues exhaustive enumeration "is infeasible since the number of
//! advertisement configurations grows exponentially with prefix budget";
//! the ablation quantifies both that blow-up (bench) and the greedy's
//! optimality gap (test).

use painter_bgp::{AdvertConfig, PrefixId};
use painter_core::{ConfigEvaluator, OrchestratorInputs, RoutingModel};
use painter_topology::PeeringId;

/// Exhaustive best advertisement configuration: tries every assignment of
/// `peerings` into at most `budget` prefixes (set partitions with empty
/// cells allowed) and returns the best by modeled (Mean) benefit.
///
/// Exponential — only usable for a handful of peerings; that is the point
/// of the ablation.
pub fn exhaustive_best_config(
    inputs: &OrchestratorInputs,
    model: &RoutingModel,
    peerings: &[PeeringId],
    budget: usize,
) -> (AdvertConfig, f64) {
    let eval = ConfigEvaluator::new(inputs, model);
    let mut best = (AdvertConfig::new(), 0.0);
    let budget = budget.max(1);
    // Each peering gets a label in 0..=budget where `budget` means "not
    // advertised"; enumerate all (budget+1)^n labelings.
    let n = peerings.len();
    let base = budget + 1;
    let total = base.pow(n as u32);
    for code in 0..total {
        let mut config = AdvertConfig::new();
        let mut c = code;
        for &pe in peerings {
            let label = c % base;
            c /= base;
            if label < budget {
                config.add(PrefixId(label as u16), pe);
            }
        }
        let benefit = eval.benefit(&config);
        if benefit > best.1 {
            best = (config, benefit);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use painter_core::{Orchestrator, OrchestratorConfig};
    use painter_eval::{helpers::world_direct, Scale, Scenario};

    /// The greedy should land within a few percent of the exhaustive
    /// optimum on instances small enough to enumerate.
    #[test]
    fn greedy_is_near_optimal_on_tiny_instances() {
        let s = Scenario::peering_like(Scale::Test, 201);
        let world = world_direct(&s);
        let model = RoutingModel::new(3000.0);
        // Pick the 5 highest-potential peerings so the instance is
        // meaningful.
        let config = painter_core::one_per_peering(&s.deployment, Some(&world.inputs), 5);
        let peerings: Vec<PeeringId> =
            config.iter().flat_map(|(_, ps)| ps.iter().copied()).collect();
        let budget = 2;
        let (_, optimal) = exhaustive_best_config(&world.inputs, &model, &peerings, budget);

        // Greedy restricted to the same peering universe: rebuild inputs
        // whose candidates only mention those peerings.
        let mut inputs = world.inputs.clone();
        for ug in &mut inputs.ugs {
            ug.candidates.retain(|(p, _)| peerings.contains(p));
        }
        let orch = Orchestrator::new(
            inputs,
            OrchestratorConfig { prefix_budget: budget, ..Default::default() },
        );
        let greedy_config = orch.compute_config();
        let eval = ConfigEvaluator::new(&orch.inputs, &orch.model);
        let greedy = eval.benefit(&greedy_config);
        assert!(
            greedy >= optimal * 0.9,
            "greedy {greedy} too far from optimal {optimal}"
        );
    }

    #[test]
    fn exhaustive_handles_degenerate_inputs() {
        let s = Scenario::peering_like(Scale::Test, 202);
        let world = world_direct(&s);
        let model = RoutingModel::new(3000.0);
        let (config, benefit) = exhaustive_best_config(&world.inputs, &model, &[], 2);
        assert!(config.is_empty());
        assert_eq!(benefit, 0.0);
    }
}
