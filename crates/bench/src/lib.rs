//! Shared fixtures and reference implementations for the benchmarks.
//!
//! Besides scenario builders, this crate hosts the *exhaustive*
//! configuration search used by the greedy-vs-optimal ablation: the paper
//! argues exhaustive enumeration "is infeasible since the number of
//! advertisement configurations grows exponentially with prefix budget";
//! the ablation quantifies both that blow-up (bench) and the greedy's
//! optimality gap (test).

use painter_bgp::{AdvertConfig, PrefixId};
use painter_core::{ConfigEvaluator, OrchestratorInputs, RoutingModel};
use painter_obs::{RunReport, Section};
use painter_topology::PeeringId;

/// Destination for a machine-readable bench run report, taken from the
/// `PAINTER_OBS_REPORT` environment variable (criterion owns the command
/// line, so a flag is not an option here).
pub fn obs_report_path() -> Option<String> {
    std::env::var("PAINTER_OBS_REPORT").ok().filter(|p| !p.is_empty())
}

/// Runs an instrumented reference workload — a full orchestrator
/// advertise→measure→learn loop plus a TM failover simulation, sharing
/// one registry — and packages the result as a [`RunReport`].
///
/// This is what makes bench trajectories machine-readable: the same
/// binary that measures wall time can emit greedy iteration counts,
/// probe RTT quantiles, and time-to-failover percentiles as JSON.
pub fn telemetry_run_report(name: &str) -> RunReport {
    use painter_core::{GroundTruthEnv, Orchestrator, OrchestratorConfig};
    use painter_eval::helpers::world_direct;
    use painter_eval::{Scale, Scenario};
    use painter_eventsim::SimTime;
    use painter_measure::UgId;
    use painter_tm::{TmSimulation, TmSimulationConfig};
    use painter_topology::PopId;

    let obs = painter_obs::Registry::new();

    let s = Scenario::azure_like(Scale::Test, 42);
    let mut world = world_direct(&s);
    let mut orch = Orchestrator::with_obs(
        world.inputs.clone(),
        OrchestratorConfig { prefix_budget: 6, max_iterations: 3, ..Default::default() },
        obs.clone(),
    );
    let ug_ids: Vec<UgId> = orch.inputs.ugs.iter().map(|u| u.id).collect();
    let mut env = GroundTruthEnv::new(&mut world.gt, ug_ids);
    let orch_report = orch.run(&mut env);

    let mut sim =
        TmSimulation::with_obs(TmSimulationConfig { seed: 7, ..Default::default() }, obs.clone());
    let t0 = sim.add_path(PrefixId(0), PopId(0), 20.0);
    let _t1 = sim.add_path(PrefixId(1), PopId(1), 50.0);
    sim.schedule_path_down(SimTime::from_secs(1.0), t0);
    sim.run(SimTime::from_secs(3.0));

    let mut report = RunReport::new(name);
    report.push_section(
        Section::new("orchestrator")
            .field("iterations", orch_report.iterations.len())
            .field("final_prefixes", orch_report.final_config.prefix_count())
            .field("final_pairs", orch_report.final_config.pair_count())
            .field(
                "measured_benefit",
                orch_report.iterations.last().map(|i| i.measured_benefit).unwrap_or(0.0),
            ),
    );
    report.push_section(
        Section::new("traffic_manager")
            .field("requests", sim.records().len())
            .field("switches", sim.switch_log().len()),
    );
    report.add_snapshot(obs.snapshot());
    report
}

/// Writes [`telemetry_run_report`] as JSON if `PAINTER_OBS_REPORT` names
/// a path; silent no-op otherwise. Bench mains call this after criterion
/// finishes.
pub fn emit_run_report(name: &str) {
    let Some(path) = obs_report_path() else { return };
    let report = telemetry_run_report(name);
    match std::fs::write(&path, report.to_json()) {
        Ok(()) => eprintln!("wrote obs report: {path}"),
        Err(e) => eprintln!("failed to write obs report to {path}: {e}"),
    }
}

/// Exhaustive best advertisement configuration: tries every assignment of
/// `peerings` into at most `budget` prefixes (set partitions with empty
/// cells allowed) and returns the best by modeled (Mean) benefit.
///
/// Exponential — only usable for a handful of peerings; that is the point
/// of the ablation.
pub fn exhaustive_best_config(
    inputs: &OrchestratorInputs,
    model: &RoutingModel,
    peerings: &[PeeringId],
    budget: usize,
) -> (AdvertConfig, f64) {
    let eval = ConfigEvaluator::new(inputs, model);
    let mut best = (AdvertConfig::new(), 0.0);
    let budget = budget.max(1);
    // Each peering gets a label in 0..=budget where `budget` means "not
    // advertised"; enumerate all (budget+1)^n labelings.
    let n = peerings.len();
    let base = budget + 1;
    let total = base.pow(n as u32);
    for code in 0..total {
        let mut config = AdvertConfig::new();
        let mut c = code;
        for &pe in peerings {
            let label = c % base;
            c /= base;
            if label < budget {
                config.add(PrefixId(label as u16), pe);
            }
        }
        let benefit = eval.benefit(&config);
        if benefit > best.1 {
            best = (config, benefit);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use painter_core::{Orchestrator, OrchestratorConfig};
    use painter_eval::{helpers::world_direct, Scale, Scenario};

    /// The greedy should land within a few percent of the exhaustive
    /// optimum on instances small enough to enumerate.
    #[test]
    fn greedy_is_near_optimal_on_tiny_instances() {
        let s = Scenario::peering_like(Scale::Test, 201);
        let world = world_direct(&s);
        let model = RoutingModel::new(3000.0);
        // Pick the 5 highest-potential peerings so the instance is
        // meaningful.
        let config = painter_core::one_per_peering(&s.deployment, Some(&world.inputs), 5);
        let peerings: Vec<PeeringId> =
            config.iter().flat_map(|(_, ps)| ps.iter().copied()).collect();
        let budget = 2;
        let (_, optimal) = exhaustive_best_config(&world.inputs, &model, &peerings, budget);

        // Greedy restricted to the same peering universe: rebuild inputs
        // whose candidates only mention those peerings.
        let mut inputs = world.inputs.clone();
        for ug in &mut inputs.ugs {
            ug.candidates.retain(|(p, _)| peerings.contains(p));
        }
        let orch = Orchestrator::new(
            inputs,
            OrchestratorConfig { prefix_budget: budget, ..Default::default() },
        );
        let greedy_config = orch.compute_config();
        let eval = ConfigEvaluator::new(&orch.inputs, &orch.model);
        let greedy = eval.benefit(&greedy_config);
        assert!(greedy >= optimal * 0.9, "greedy {greedy} too far from optimal {optimal}");
    }

    #[test]
    fn exhaustive_handles_degenerate_inputs() {
        let s = Scenario::peering_like(Scale::Test, 202);
        let world = world_direct(&s);
        let model = RoutingModel::new(3000.0);
        let (config, benefit) = exhaustive_best_config(&world.inputs, &model, &[], 2);
        assert!(config.is_empty());
        assert_eq!(benefit, 0.0);
    }
}
