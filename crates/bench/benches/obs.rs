//! Telemetry overhead benchmarks.
//!
//! Run twice and compare:
//!
//! ```text
//! cargo bench -p painter-bench --bench obs
//! cargo bench -p painter-bench --bench obs --features obs-off
//! ```
//!
//! `obs/primitives` measures the raw metric operations (atomic adds and
//! CAS loops live, empty inline bodies under `obs-off` — the `obs-off`
//! numbers should be indistinguishable from an empty loop). The two
//! hot-path groups re-run the instrumented TM packet loop and greedy
//! inner loop; the acceptance criterion is that their `obs-off` timings
//! show no measurable regression vs the pre-instrumentation baseline.

use criterion::{black_box, criterion_group, Criterion};
use painter_bgp::PrefixId;
use painter_core::{Orchestrator, OrchestratorConfig};
use painter_eval::helpers::world_direct;
use painter_eval::Scenario;
use painter_eventsim::SimTime;
use painter_obs::{obs_count, Registry, Span};
use painter_tm::{TmSimulation, TmSimulationConfig};
use painter_topology::PopId;

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/primitives");
    let reg = Registry::new();
    let counter = reg.counter("bench.ops_total");
    let hist = reg.histogram("bench.val_ms");
    group.bench_function("counter-inc", |b| b.iter(|| counter.inc()));
    group.bench_function("histogram-record", |b| b.iter(|| hist.record(black_box(3.7))));
    group
        .bench_function("macro-count-by-name", |b| b.iter(|| obs_count!(reg, "bench.named_total")));
    group.bench_function("span-enter-drop", |b| b.iter(|| Span::enter(&reg, "bench.span_ms")));
    group.finish();
}

fn bench_tm_packet_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/tm-packet-loop");
    group.sample_size(10);
    group.bench_function("two-path-2s", |b| {
        b.iter(|| {
            let mut sim = TmSimulation::new(TmSimulationConfig { seed: 9, ..Default::default() });
            sim.add_path(PrefixId(0), PopId(0), 20.0);
            sim.add_path(PrefixId(1), PopId(1), 50.0);
            sim.run(SimTime::from_secs(2.0));
            sim.records().len()
        })
    });
    group.finish();
}

fn bench_greedy_inner_loop(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs/greedy-inner-loop");
    group.sample_size(10);
    let s = Scenario::azure_like(painter_eval::Scale::Test, 77);
    let world = world_direct(&s);
    group.bench_function("compute-config", |b| {
        b.iter(|| {
            let orch = Orchestrator::new(
                world.inputs.clone(),
                OrchestratorConfig { prefix_budget: 8, ..Default::default() },
            );
            orch.compute_config()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_tm_packet_loop, bench_greedy_inner_loop);

fn main() {
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
    painter_bench::emit_run_report("bench-obs");
}
