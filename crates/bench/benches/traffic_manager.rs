//! Traffic Manager benchmarks: the per-packet datapath (encapsulation,
//! NAT, restore — Appendix D argues its overhead is negligible) and the
//! end-to-end failover simulation.

use bytes::Bytes;
use criterion::{criterion_group, Criterion};
use painter_bgp::PrefixId;
use painter_eventsim::SimTime;
use painter_net::{encapsulate, FiveTuple, NatTable, Packet, PacketHeader, PROTO_TCP};
use painter_tm::{pop::client_packet, TmPop, TmSimulation, TmSimulationConfig};
use painter_topology::PopId;

fn bench_datapath(c: &mut Criterion) {
    let mut group = c.benchmark_group("tm/datapath");
    let inner = client_packet(0xC0A8_0001, 5000, 0x0808_0808, b"0123456789abcdef");
    group.bench_function("encapsulate+decapsulate", |b| {
        b.iter(|| {
            let outer = encapsulate(0xC0A8_0001, 0x6440_0001, &inner);
            painter_net::decapsulate(&outer).expect("tunnel packet")
        })
    });
    group.bench_function("pop-echo-roundtrip", |b| {
        let mut pop = TmPop::new(PopId(0), 0x6440_0001, vec![0x6440_0002]);
        let outer = encapsulate(0xC0A8_0001, 0x6440_0001, &inner);
        b.iter(|| pop.echo_roundtrip(&outer).expect("roundtrip"))
    });
    group.bench_function("nat-bind-lookup", |b| {
        let mut nat = NatTable::new(vec![1, 2]);
        let mut port = 1u16;
        b.iter(|| {
            let flow =
                FiveTuple { protocol: PROTO_TCP, src: 9, dst: 10, src_port: port, dst_port: 443 };
            port = port.wrapping_add(1).max(1);
            let binding = nat.bind(flow, 5).expect("capacity");
            let got = nat.lookup(binding.pop_addr, binding.pop_port).expect("bound");
            nat.unbind(&flow);
            got
        })
    });
    group.bench_function("packet-encode-decode", |b| {
        let p = Packet::new(
            PacketHeader { src: 1, dst: 2, protocol: PROTO_TCP, src_port: 3, dst_port: 4 },
            Bytes::from_static(b"payload-payload-payload"),
        );
        b.iter(|| Packet::decode(p.encode()).expect("round-trip"))
    });
    group.finish();
}

fn bench_failover_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("tm/failover");
    group.sample_size(10);
    group.bench_function("two-path-failover-3s", |b| {
        b.iter(|| {
            let mut sim = TmSimulation::new(TmSimulationConfig { seed: 5, ..Default::default() });
            let t0 = sim.add_path(PrefixId(0), PopId(0), 20.0);
            let _t1 = sim.add_path(PrefixId(1), PopId(1), 50.0);
            sim.schedule_path_down(SimTime::from_secs(1.0), t0);
            sim.run(SimTime::from_secs(3.0));
            sim.records().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_datapath, bench_failover_sim);

fn main() {
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
    // Set PAINTER_OBS_REPORT=<path>.json for a machine-readable telemetry
    // report of a reference orchestrator + TM run.
    painter_bench::emit_run_report("bench-traffic-manager");
}
