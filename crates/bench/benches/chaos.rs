//! Flight-recorder overhead benchmarks.
//!
//! Run twice and compare:
//!
//! ```text
//! cargo bench -p painter-bench --bench chaos
//! cargo bench -p painter-bench --bench chaos --features obs-off
//! ```
//!
//! `chaos/campaign` runs a full guarded campaign — BGP dynamics, TM
//! failover, closed-loop learning, and (live only) the causal trace plus
//! incident attribution. The acceptance criterion is that the `obs-off`
//! timing shows no measurable regression vs the pre-flight-recorder
//! baseline: with the ZST sink every `emit` call site compiles to
//! nothing, so any gap between the two runs is the true cost of
//! recording. `chaos/attribution` isolates the post-hoc fold itself
//! (cause-chain walk + incident derivation + timeline render), which
//! only does real work in the live build.

use criterion::{black_box, criterion_group, Criterion};
use painter_eval::chaos::{run_campaign, standard_suite, ChaosTiming};
use painter_eval::incidents::{attribute, render_timeline};
use painter_eval::Scale;

fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos/campaign");
    group.sample_size(10);
    let timing = ChaosTiming::for_scale(Scale::Test);
    let suite = standard_suite(&timing);
    group.bench_function("pop-outage", |b| {
        b.iter(|| {
            let outcome = run_campaign(&suite[0], &timing, black_box(1)).expect("campaign");
            (outcome.incidents.len(), outcome.events.len())
        })
    });
    group.bench_function("multi-fault", |b| {
        b.iter(|| {
            let outcome = run_campaign(&suite[2], &timing, black_box(1)).expect("campaign");
            (outcome.incidents.len(), outcome.events.len())
        })
    });
    group.finish();
}

fn bench_attribution(c: &mut Criterion) {
    let mut group = c.benchmark_group("chaos/attribution");
    group.sample_size(10);
    let timing = ChaosTiming::for_scale(Scale::Test);
    let spec = standard_suite(&timing).remove(2);
    let outcome = run_campaign(&spec, &timing, 1).expect("campaign");
    group.bench_function("attribute", |b| {
        b.iter(|| attribute(&spec, &outcome.schedule, black_box(&outcome.events), &[]))
    });
    group.bench_function("render-timeline", |b| {
        b.iter(|| {
            render_timeline(&outcome.schedule, black_box(&outcome.events), &outcome.incidents)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_campaign, bench_attribution);

fn main() {
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
    painter_bench::emit_run_report("bench-chaos");
}
