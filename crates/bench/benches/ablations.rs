//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! * **Greedy vs exhaustive** — the exhaustive search blows up
//!   exponentially with the peering count even at budget 2, while the
//!   greedy stays flat; this is the quantitative backing for Algorithm
//!   1's existence.
//! * **Prefix reuse (`D_reuse`)** — allocator cost and resulting prefix
//!   count across reuse distances.
//! * **Flow pinning** — NAT binding reuse (pinned flows) vs a fresh
//!   binding per packet (what losing connection state would cost).
//! * **Selection hysteresis** — switch counts with and without the
//!   oscillation guard under jittery paths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use painter_bench::exhaustive_best_config;
use painter_core::{one_per_peering, Orchestrator, OrchestratorConfig, RoutingModel};
use painter_eval::helpers::world_direct;
use painter_eval::{Scale, Scenario};
use painter_net::{FiveTuple, NatTable, PROTO_TCP};
use painter_tm::{EdgeConfig, TmEdge};
use painter_topology::PeeringId;

fn bench_greedy_vs_exhaustive(c: &mut Criterion) {
    let s = Scenario::peering_like(Scale::Test, 501);
    let world = world_direct(&s);
    let model = RoutingModel::new(3000.0);
    let mut group = c.benchmark_group("ablation/greedy-vs-exhaustive");
    group.sample_size(10);
    for &n in &[3usize, 4, 5, 6] {
        let config = one_per_peering(&s.deployment, Some(&world.inputs), n);
        let peerings: Vec<PeeringId> =
            config.iter().flat_map(|(_, ps)| ps.iter().copied()).collect();
        group.bench_with_input(BenchmarkId::new("exhaustive", n), &peerings, |b, peerings| {
            b.iter(|| exhaustive_best_config(&world.inputs, &model, peerings, 2))
        });
    }
    group.bench_function("greedy-full-universe", |b| {
        b.iter(|| {
            let orch = Orchestrator::new(
                world.inputs.clone(),
                OrchestratorConfig { prefix_budget: 2, ..Default::default() },
            );
            orch.compute_config()
        })
    });
    group.finish();
}

fn bench_d_reuse(c: &mut Criterion) {
    let s = Scenario::peering_like(Scale::Test, 502);
    let world = world_direct(&s);
    let mut group = c.benchmark_group("ablation/d-reuse");
    group.sample_size(10);
    for &d in &[500.0f64, 1500.0, 3000.0, 9000.0] {
        group.bench_with_input(BenchmarkId::from_parameter(d as u64), &d, |b, &d| {
            b.iter(|| {
                let orch = Orchestrator::new(
                    world.inputs.clone(),
                    OrchestratorConfig { prefix_budget: 12, d_reuse_km: d, ..Default::default() },
                );
                let config = orch.compute_config();
                config.pair_count()
            })
        });
    }
    group.finish();
}

fn bench_flow_pinning(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/flow-pinning");
    group.bench_function("pinned-flow-repeat-packets", |b| {
        let mut nat = NatTable::new(vec![1]);
        let flow = FiveTuple { protocol: PROTO_TCP, src: 9, dst: 10, src_port: 1, dst_port: 443 };
        b.iter(|| nat.bind(flow, 5).expect("capacity"))
    });
    group.bench_function("unpinned-fresh-binding-per-packet", |b| {
        let mut nat = NatTable::new(vec![1]);
        let mut port = 1u16;
        b.iter(|| {
            let flow =
                FiveTuple { protocol: PROTO_TCP, src: 9, dst: 10, src_port: port, dst_port: 443 };
            port = port.wrapping_add(1).max(1);
            let binding = nat.bind(flow, 5).expect("capacity");
            nat.unbind(&flow);
            binding
        })
    });
    group.finish();
}

fn bench_hysteresis(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/hysteresis");
    // Two near-equal paths whose measured RTTs jitter across each other;
    // count selection switches over a burst of alternating samples.
    let run_with = |hysteresis_ms: f64| -> u64 {
        let mut edge = TmEdge::new(1, EdgeConfig { hysteresis_ms, ..Default::default() });
        let a = edge.add_tunnel(painter_bgp::PrefixId(0), 10, 20.0);
        let b = edge.add_tunnel(painter_bgp::PrefixId(1), 11, 20.5);
        edge.select();
        for i in 0..1000u64 {
            let now = painter_eventsim::SimTime::from_ms(i as f64);
            // Alternate which path looks better by ±1 ms.
            let (fast, slow) = if i % 2 == 0 { (a, b) } else { (b, a) };
            let (seq, _) = edge.on_send(fast, now);
            edge.on_response(fast, seq, now + painter_eventsim::SimTime::from_ms(19.5));
            let (seq, _) = edge.on_send(slow, now);
            edge.on_response(slow, seq, now + painter_eventsim::SimTime::from_ms(21.0));
            edge.select();
        }
        edge.switches
    };
    group.bench_function("with-hysteresis", |b| b.iter(|| run_with(3.0)));
    group.bench_function("without-hysteresis", |b| b.iter(|| run_with(0.0)));
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy_vs_exhaustive,
    bench_d_reuse,
    bench_flow_pinning,
    bench_hysteresis
);
criterion_main!(benches);
