//! Orchestrator benchmarks: Algorithm 1's scaling behaviour.
//!
//! §4 of the paper: configurations compute at ~30 s/prefix over thousands
//! of ingresses and tens of thousands of UGs, with complexity "quadratic
//! in the number of ingresses, linear in the number of UGs". These
//! benches measure our allocator along both axes, plus the benefit
//! evaluator and the learning step.

use criterion::{criterion_group, BenchmarkId, Criterion};
use painter_core::{ConfigEvaluator, GroundTruthEnv, Orchestrator, OrchestratorConfig};
use painter_eval::helpers::world_direct;
use painter_eval::Scenario;
use painter_measure::UgId;
use painter_topology::{DeploymentConfig, TopologyConfig};

fn scenario_sized(stubs: usize, pops: usize, seed: u64) -> Scenario {
    Scenario::build(
        TopologyConfig {
            seed,
            num_tier1: 6,
            transit_per_region: 4,
            access_per_region: 10,
            num_stubs: stubs,
            ..Default::default()
        },
        DeploymentConfig { seed, num_pops: pops, ..Default::default() },
        seed,
    )
}

fn bench_greedy_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("orchestrator/greedy");
    group.sample_size(10);
    // Scale over UG count (linear axis).
    for &stubs in &[100usize, 200, 400] {
        let s = scenario_sized(stubs, 12, 301);
        let world = world_direct(&s);
        group.bench_with_input(BenchmarkId::new("ugs", stubs), &world.inputs, |b, inputs| {
            b.iter(|| {
                let orch = Orchestrator::new(
                    inputs.clone(),
                    OrchestratorConfig { prefix_budget: 8, ..Default::default() },
                );
                orch.compute_config()
            })
        });
    }
    // Scale over ingress count (the quadratic axis).
    for &pops in &[8usize, 16, 24] {
        let s = scenario_sized(200, pops, 302);
        let world = world_direct(&s);
        let label = s.ingress_count();
        group.bench_with_input(BenchmarkId::new("ingresses", label), &world.inputs, |b, inputs| {
            b.iter(|| {
                let orch = Orchestrator::new(
                    inputs.clone(),
                    OrchestratorConfig { prefix_budget: 8, ..Default::default() },
                );
                orch.compute_config()
            })
        });
    }
    group.finish();
}

fn bench_parallel_speedup(c: &mut Criterion) {
    // Serial vs parallel allocation on the repository's paper-scale world
    // (25 PoPs; the generator yields a few hundred ingresses where the
    // paper's deployment had ~9,000, but the cost shape — a few wide
    // transit peerings towering over many narrow ones — matches). The
    // output is bit-identical at every thread count, so only the wall
    // clock should move; speedup requires the host to actually have
    // cores, which CI runners and laptops do and 1-CPU containers don't.
    let mut group = c.benchmark_group("orchestrator/parallel");
    group.sample_size(10);
    let s = Scenario::peering_like(painter_eval::Scale::Paper, 305);
    let world = world_direct(&s);
    for &threads in &[1usize, 2, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &world.inputs, |b, inputs| {
            b.iter(|| {
                let orch = Orchestrator::new(
                    inputs.clone(),
                    OrchestratorConfig {
                        prefix_budget: 8,
                        threads: Some(threads),
                        ..Default::default()
                    },
                );
                orch.compute_config()
            })
        });
    }
    group.finish();
}

fn bench_learning_iteration(c: &mut Criterion) {
    let s = scenario_sized(200, 12, 303);
    c.bench_function("orchestrator/learning-iteration", |b| {
        b.iter(|| {
            let mut world = world_direct(&s);
            let mut orch = Orchestrator::new(
                world.inputs.clone(),
                OrchestratorConfig { prefix_budget: 6, max_iterations: 1, ..Default::default() },
            );
            let ug_ids: Vec<UgId> = orch.inputs.ugs.iter().map(|u| u.id).collect();
            let mut env = GroundTruthEnv::new(&mut world.gt, ug_ids);
            orch.run(&mut env)
        })
    });
}

fn bench_benefit_evaluation(c: &mut Criterion) {
    let s = scenario_sized(300, 12, 304);
    let world = world_direct(&s);
    let orch = Orchestrator::new(
        world.inputs.clone(),
        OrchestratorConfig { prefix_budget: 8, ..Default::default() },
    );
    let config = orch.compute_config();
    c.bench_function("orchestrator/benefit-range", |b| {
        let eval = ConfigEvaluator::new(&orch.inputs, &orch.model);
        b.iter(|| eval.benefit_range(&config))
    });
}

criterion_group!(
    benches,
    bench_greedy_scaling,
    bench_parallel_speedup,
    bench_learning_iteration,
    bench_benefit_evaluation
);

fn main() {
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
    // Set PAINTER_OBS_REPORT=<path>.json for a machine-readable telemetry
    // report of a reference orchestrator + TM run.
    painter_bench::emit_run_report("bench-orchestrator");
}
