//! One benchmark per paper figure: each bench regenerates the figure's
//! data series end-to-end (at test scale, so the suite completes in
//! minutes). The `figures` binary produces the paper-scale output; these
//! benches track the cost of each reproduction pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use painter_eval::figs::{run, ALL_FIGURES};
use painter_eval::Scale;

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for &id in ALL_FIGURES {
        group.bench_function(id, |b| {
            b.iter(|| {
                let fig = run(id, Scale::Test).expect("known figure id");
                assert!(!fig.series.is_empty());
                fig
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
