//! Million-UG scale benchmarks: the SoA benefit arena vs the retained
//! nested-lookup reference fill, and incremental delta rescoring vs a
//! full refill.
//!
//! These are the two hot paths behind `figures scale`: the arena fill is
//! the per-prefix scoring kernel (linear in total candidacies), and the
//! incremental path is what makes steady-state reconfiguration after a
//! measurement delta cheap. Inputs come from the same synthetic
//! generator the scale sweep uses, so bench numbers and BENCH_scale.json
//! trajectories are directly comparable.

use criterion::{criterion_group, BenchmarkId, Criterion};
use painter_core::{BenefitArena, Orchestrator, OrchestratorConfig};
use painter_eval::scale::{delta_stream, synthesize_inputs, ScaleConfig};
use painter_eval::Scale;
use painter_measure::build_user_groups;
use painter_topology::{generate, TopologyConfig};

const PEERINGS: usize = 64;

fn scale_inputs(n_ugs: usize, seed: u64) -> painter_core::OrchestratorInputs {
    let config = ScaleConfig::for_scale(Scale::Test, seed);
    let net = generate(TopologyConfig::scale(seed, n_ugs));
    let ugs = build_user_groups(&net, seed);
    synthesize_inputs(&config, &ugs, PEERINGS)
}

fn orchestrator_for(inputs: &painter_core::OrchestratorInputs) -> Orchestrator {
    Orchestrator::new(
        inputs.clone(),
        OrchestratorConfig { prefix_budget: 8, threads: Some(1), ..Default::default() },
    )
}

/// SoA arena fill vs the nested-lookup reference at 10k and 100k UGs:
/// the same scores bit-for-bit, so only layout (and its cache behavior)
/// differs.
fn bench_fill_layouts(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale/fill");
    group.sample_size(10);
    for &n_ugs in &[10_000usize, 100_000] {
        let inputs = scale_inputs(n_ugs, 41);
        let orch = orchestrator_for(&inputs);
        let arena = BenefitArena::from_inputs(&orch.inputs);
        group.bench_with_input(BenchmarkId::new("arena", n_ugs), &orch, |b, orch| {
            b.iter(|| orch.fill_scores_arena(&arena))
        });
        group.bench_with_input(BenchmarkId::new("reference", n_ugs), &orch, |b, orch| {
            b.iter(|| orch.fill_scores_reference())
        });
    }
    group.finish();
}

/// Steady-state reconfiguration at 100k UGs: apply one measurement delta
/// and recompute incrementally (dirty-set rescoring over a warm cache)
/// vs recomputing the whole configuration from scratch.
fn bench_incremental_vs_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("scale/recompute");
    group.sample_size(10);
    let n_ugs = 100_000;
    let inputs = scale_inputs(n_ugs, 42);
    let config = ScaleConfig::for_scale(Scale::Test, 42);
    let deltas = delta_stream(&config, n_ugs, PEERINGS);

    group.bench_with_input(BenchmarkId::new("incremental", n_ugs), &inputs, |b, inputs| {
        let mut orch = orchestrator_for(inputs);
        let _ = orch.compute_config_incremental(); // warm cache, once
        let mut k = 0;
        b.iter(|| {
            orch.apply_delta(deltas[k % deltas.len()].clone());
            k += 1;
            orch.compute_config_incremental()
        })
    });
    group.bench_with_input(BenchmarkId::new("full", n_ugs), &inputs, |b, inputs| {
        let mut orch = orchestrator_for(inputs);
        let mut k = 0;
        b.iter(|| {
            orch.apply_delta(deltas[k % deltas.len()].clone());
            k += 1;
            orch.compute_config_traced()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fill_layouts, bench_incremental_vs_full);

fn main() {
    benches();
    criterion::Criterion::default().configure_from_args().final_summary();
    painter_bench::emit_run_report("bench-scale");
}
