//! BGP substrate benchmarks: static solves (the inner loop of every
//! measurement and evaluation) and dynamic convergence.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use painter_bgp::dynamics::{BgpEngine, DynamicsConfig};
use painter_bgp::solve::solve;
use painter_bgp::PrefixId;
use painter_eventsim::SimTime;
use painter_topology::{Deployment, DeploymentConfig, PeeringId, TopologyConfig};

fn substrate(stubs: usize, seed: u64) -> (painter_topology::Internet, Deployment) {
    let net = painter_topology::generate(TopologyConfig {
        seed,
        num_tier1: 8,
        transit_per_region: 5,
        access_per_region: 14,
        num_stubs: stubs,
        ..Default::default()
    });
    let dep = Deployment::generate(
        &net.graph,
        &DeploymentConfig { seed, num_pops: 16, ..Default::default() },
    );
    (net, dep)
}

fn bench_static_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("bgp/static-solve");
    for &stubs in &[200usize, 500, 1000] {
        let (net, dep) = substrate(stubs, 401);
        let all: Vec<PeeringId> = dep.peerings().iter().map(|p| p.id).collect();
        group.bench_with_input(
            BenchmarkId::new("anycast", net.graph.len()),
            &(&net, &dep, &all),
            |b, (net, dep, all)| b.iter(|| solve(&net.graph, dep, all, 7)),
        );
        group.bench_with_input(
            BenchmarkId::new("single-origin", net.graph.len()),
            &(&net, &dep),
            |b, (net, dep)| b.iter(|| solve(&net.graph, dep, &[PeeringId(0)], 7)),
        );
    }
    group.finish();
}

fn bench_dynamic_convergence(c: &mut Criterion) {
    let (net, dep) = substrate(300, 402);
    let all: Vec<PeeringId> = dep.peerings().iter().map(|p| p.id).collect();
    let mut group = c.benchmark_group("bgp/dynamic");
    group.sample_size(10);
    group.bench_function("announce-converge", |b| {
        b.iter(|| {
            let mut engine = BgpEngine::new(&net.graph, &dep, DynamicsConfig::default(), 7);
            for &pe in &all {
                engine.announce(SimTime::ZERO, PrefixId(0), pe);
            }
            engine.run_until(SimTime::from_secs(120.0));
            engine.churn().len()
        })
    });
    group.bench_function("withdraw-reconverge", |b| {
        b.iter(|| {
            let mut engine = BgpEngine::new(&net.graph, &dep, DynamicsConfig::default(), 7);
            for &pe in &all {
                engine.announce(SimTime::ZERO, PrefixId(0), pe);
            }
            engine.run_until(SimTime::from_secs(120.0));
            for &pe in all.iter().take(all.len() / 2) {
                engine.withdraw(SimTime::from_secs(120.0), PrefixId(0), pe);
            }
            engine.run_until(SimTime::from_secs(240.0));
            engine.churn().len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_static_solve, bench_dynamic_convergence);
criterion_main!(benches);
