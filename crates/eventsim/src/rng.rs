//! Seeded randomness for deterministic simulations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Derives an independent seed from a base seed and a stream identifier.
///
/// Every subsystem of a simulation (topology generation, latency jitter,
/// flow arrivals, ...) takes its own stream so adding randomness consumption
/// to one subsystem never perturbs another. The mix is SplitMix64, whose
/// avalanche behaviour makes related `(base, stream)` pairs produce
/// unrelated seeds.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic random-number generator for simulations.
///
/// Thin wrapper over [`SmallRng`] adding the distribution helpers the
/// simulation needs (exponential, log-normal, Pareto-ish heavy tails)
/// without pulling in `rand_distr`.
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng { inner: SmallRng::seed_from_u64(seed) }
    }

    /// Creates a generator for a named stream of a base seed.
    pub fn stream(base: u64, stream: u64) -> Self {
        Self::new(derive_seed(base, stream))
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`. Returns 0 when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; 1-unit() avoids ln(0).
        -mean * (1.0 - self.unit()).ln()
    }

    /// Log-normally distributed value parameterized by the *median* and the
    /// shape `sigma` (standard deviation of the underlying normal).
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        if median <= 0.0 {
            return 0.0;
        }
        median * (sigma * self.standard_normal()).exp()
    }

    /// Pareto-distributed value with scale `xm > 0` and shape `alpha > 0`.
    ///
    /// Heavy-tailed; used for flow sizes/durations and traffic weights.
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        if xm <= 0.0 || alpha <= 0.0 {
            return 0.0;
        }
        xm / (1.0 - self.unit()).powf(1.0 / alpha)
    }

    /// Standard normal via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1 = 1.0 - self.unit(); // (0, 1]
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev.max(0.0) * self.standard_normal()
    }

    /// Picks an index in `[0, weights.len())` with probability proportional
    /// to `weights`. Non-finite or negative weights count as zero. Returns
    /// `None` for an empty or all-zero slice.
    pub fn weighted_index(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut target = self.unit() * total;
        for (i, w) in weights.iter().enumerate() {
            if w.is_finite() && *w > 0.0 {
                target -= w;
                if target <= 0.0 {
                    return Some(i);
                }
            }
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Access to the underlying [`Rng`] for anything not covered above.
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.unit().to_bits(), b.unit().to_bits());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let mut a = SimRng::stream(42, 0);
        let mut b = SimRng::stream(42, 1);
        let same = (0..100).filter(|_| a.unit().to_bits() == b.unit().to_bits()).count();
        assert!(same < 5);
    }

    #[test]
    fn derive_seed_is_deterministic_and_spread() {
        assert_eq!(derive_seed(1, 2), derive_seed(1, 2));
        assert_ne!(derive_seed(1, 2), derive_seed(1, 3));
        assert_ne!(derive_seed(1, 2), derive_seed(2, 2));
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::new(7);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "got {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut rng = SimRng::new(8);
        for _ in 0..1000 {
            assert!(rng.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SimRng::new(9);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.weighted_index(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!(ratio > 2.5 && ratio < 3.5, "got {ratio}");
    }

    #[test]
    fn weighted_index_empty_and_zero() {
        let mut rng = SimRng::new(10);
        assert_eq!(rng.weighted_index(&[]), None);
        assert_eq!(rng.weighted_index(&[0.0, 0.0]), None);
        assert_eq!(rng.weighted_index(&[f64::NAN]), None);
    }

    #[test]
    fn degenerate_parameters_return_zero() {
        let mut rng = SimRng::new(11);
        assert_eq!(rng.exponential(0.0), 0.0);
        assert_eq!(rng.pareto(0.0, 1.0), 0.0);
        assert_eq!(rng.log_normal(0.0, 1.0), 0.0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(12);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn normal_is_centered() {
        let mut rng = SimRng::new(13);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.normal(5.0, 2.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "got {mean}");
    }
}
