//! Discrete-event simulation kernel for the PAINTER reproduction.
//!
//! Both the dynamic BGP engine (route propagation with MRAI timers,
//! withdrawals, convergence churn) and the Traffic Manager (packet-level
//! tunneling with RTT-timescale failover) are event-driven simulations. This
//! crate provides the shared kernel: a virtual clock, a deterministic event
//! queue, and a seeded random-number utility.
//!
//! Design goals, in order: *determinism* (a given seed replays bit-for-bit,
//! events at equal timestamps fire in scheduling order), *simplicity*, and
//! *robustness* — matching the idioms of event-driven network stacks such as
//! smoltcp, the kernel never consults wall-clock time and never allocates
//! implicitly on the hot path beyond the binary heap itself.

pub mod queue;
pub mod rng;
pub mod time;

pub use queue::EventQueue;
pub use rng::{derive_seed, SimRng};
pub use time::SimTime;

/// A simulation world: owns state and reacts to events.
///
/// The driver ([`run`]) pops events in timestamp order and hands them to the
/// handler along with a [`Scheduler`] for enqueueing follow-up events.
pub trait EventHandler {
    /// The event type this world reacts to.
    type Event;

    /// Handles one event at virtual time `now`.
    fn handle(&mut self, now: SimTime, event: Self::Event, scheduler: &mut Scheduler<Self::Event>);
}

/// Handle used by event handlers to schedule future events.
///
/// Events scheduled for the current instant are processed after all events
/// already queued for that instant (FIFO among equal timestamps).
pub struct Scheduler<E> {
    now: SimTime,
    pending: Vec<(SimTime, E)>,
}

impl<E> Scheduler<E> {
    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` to fire `delay` after the current instant.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.pending.push((self.now + delay, event));
    }

    /// Schedules `event` at an absolute virtual time.
    ///
    /// Times in the past are clamped to the current instant (the event fires
    /// "now", after already-queued events at this instant).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.pending.push((at.max(self.now), event));
    }
}

/// Statistics returned by [`run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of events processed.
    pub events_processed: u64,
    /// Virtual time of the last processed event (zero if none).
    pub last_event_time: SimTime,
}

/// Drives `world` until the queue is empty, `until` is reached, or
/// `max_events` events have been processed — whichever comes first.
///
/// Events with timestamp exactly `until` are processed; later ones remain in
/// the queue, so a simulation can be resumed by calling [`run`] again with a
/// larger horizon.
pub fn run<W: EventHandler>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    until: SimTime,
    max_events: u64,
) -> RunStats {
    run_inner(world, queue, until, max_events, None)
}

/// [`run`], with kernel telemetry recorded into `obs`.
///
/// Per run: `eventsim.events_processed` (counter, total events handled),
/// `eventsim.queue_depth_hwm` (gauge, high-water mark of the event queue),
/// and `eventsim.virtual_wall_ratio` (gauge, virtual milliseconds advanced
/// per wall millisecond — the kernel's speedup over real time). The ratio
/// is the one place the kernel reads the wall clock; it never influences
/// event ordering, and under `obs-off` the clock is not consulted at all.
pub fn run_observed<W: EventHandler>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    until: SimTime,
    max_events: u64,
    obs: &painter_obs::Registry,
) -> RunStats {
    run_inner(world, queue, until, max_events, Some(obs))
}

fn run_inner<W: EventHandler>(
    world: &mut W,
    queue: &mut EventQueue<W::Event>,
    until: SimTime,
    max_events: u64,
    obs: Option<&painter_obs::Registry>,
) -> RunStats {
    let depth_hwm = obs.map(|o| o.gauge("eventsim.queue_depth_hwm"));
    let wall_start = if painter_obs::enabled() && obs.is_some() {
        Some(std::time::Instant::now())
    } else {
        None
    };
    let virtual_start = queue.peek_time().unwrap_or(SimTime::ZERO);
    let mut stats = RunStats { events_processed: 0, last_event_time: SimTime::ZERO };
    while stats.events_processed < max_events {
        let Some(next_time) = queue.peek_time() else { break };
        if next_time > until {
            break;
        }
        let (time, event) = queue.pop().expect("peeked event must exist");
        let mut scheduler = Scheduler { now: time, pending: Vec::new() };
        world.handle(time, event, &mut scheduler);
        for (at, ev) in scheduler.pending {
            queue.push(at, ev);
        }
        if let Some(hwm) = &depth_hwm {
            hwm.set_max(queue.len() as f64);
        }
        stats.events_processed += 1;
        stats.last_event_time = time;
    }
    if let Some(obs) = obs {
        obs.counter("eventsim.events_processed").add(stats.events_processed);
        if let Some(started) = wall_start {
            let wall_ms = started.elapsed().as_secs_f64() * 1e3;
            if wall_ms > 0.0 && stats.events_processed > 0 {
                let virtual_ms = (stats.last_event_time - virtual_start).as_ms();
                obs.gauge("eventsim.virtual_wall_ratio").set(virtual_ms / wall_ms);
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        fired: Vec<(SimTime, u32)>,
        spawn_chain: bool,
    }

    impl EventHandler for Counter {
        type Event = u32;
        fn handle(&mut self, now: SimTime, event: u32, sched: &mut Scheduler<u32>) {
            self.fired.push((now, event));
            if self.spawn_chain && event < 5 {
                sched.schedule_in(SimTime::from_ms(1.0), event + 1);
            }
        }
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(3.0), 3);
        q.push(SimTime::from_ms(1.0), 1);
        q.push(SimTime::from_ms(2.0), 2);
        let mut w = Counter { fired: Vec::new(), spawn_chain: false };
        run(&mut w, &mut q, SimTime::from_ms(100.0), u64::MAX);
        let order: Vec<u32> = w.fired.iter().map(|(_, e)| *e).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_timestamps_fire_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1.0);
        for i in 0..10 {
            q.push(t, i);
        }
        let mut w = Counter { fired: Vec::new(), spawn_chain: false };
        run(&mut w, &mut q, t, u64::MAX);
        let order: Vec<u32> = w.fired.iter().map(|(_, e)| *e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handler_spawned_events_run() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 0);
        let mut w = Counter { fired: Vec::new(), spawn_chain: true };
        let stats = run(&mut w, &mut q, SimTime::from_ms(100.0), u64::MAX);
        assert_eq!(stats.events_processed, 6); // 0..=5
        assert_eq!(w.fired.last().unwrap().0, SimTime::from_ms(5.0));
    }

    #[test]
    fn horizon_stops_processing_but_keeps_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(1.0), 1);
        q.push(SimTime::from_ms(10.0), 2);
        let mut w = Counter { fired: Vec::new(), spawn_chain: false };
        let stats = run(&mut w, &mut q, SimTime::from_ms(5.0), u64::MAX);
        assert_eq!(stats.events_processed, 1);
        assert_eq!(q.len(), 1);
        // Resume.
        let stats = run(&mut w, &mut q, SimTime::from_ms(20.0), u64::MAX);
        assert_eq!(stats.events_processed, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn max_events_bounds_runaway_simulations() {
        struct Loops;
        impl EventHandler for Loops {
            type Event = ();
            fn handle(&mut self, _: SimTime, _: (), sched: &mut Scheduler<()>) {
                sched.schedule_in(SimTime::from_ms(1.0), ());
            }
        }
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        let stats = run(&mut Loops, &mut q, SimTime::from_secs(1e9), 1000);
        assert_eq!(stats.events_processed, 1000);
    }

    #[test]
    fn run_observed_records_kernel_metrics() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(3.0), 3);
        q.push(SimTime::from_ms(1.0), 1);
        q.push(SimTime::from_ms(2.0), 2);
        let mut w = Counter { fired: Vec::new(), spawn_chain: false };
        let obs = painter_obs::Registry::new();
        let stats = run_observed(&mut w, &mut q, SimTime::from_ms(100.0), u64::MAX, &obs);
        assert_eq!(stats.events_processed, 3);
        let snap = obs.snapshot();
        if painter_obs::enabled() {
            assert_eq!(snap.counter("eventsim.events_processed"), Some(3));
            // After the first pop two events remained queued.
            assert_eq!(snap.gauge("eventsim.queue_depth_hwm"), Some(2.0));
        } else {
            assert!(snap.metrics.is_empty());
        }
    }

    #[test]
    fn schedule_at_clamps_past_times() {
        struct PastScheduler {
            fired: u32,
        }
        impl EventHandler for PastScheduler {
            type Event = bool;
            fn handle(&mut self, _: SimTime, first: bool, sched: &mut Scheduler<bool>) {
                self.fired += 1;
                if first {
                    sched.schedule_at(SimTime::ZERO, false); // in the past
                }
            }
        }
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(5.0), true);
        let mut w = PastScheduler { fired: 0 };
        run(&mut w, &mut q, SimTime::from_ms(10.0), u64::MAX);
        assert_eq!(w.fired, 2);
    }
}
