//! Virtual simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Virtual time, stored as integer nanoseconds since simulation start.
///
/// Nanosecond resolution keeps packet-level timing exact (the Traffic
/// Manager measures failover in fractions of an RTT) while `u64` still
/// covers ~584 years of simulated time. Arithmetic saturates rather than
/// wrapping: a saturated clock is a visible, debuggable end-of-time, whereas
/// wraparound would silently reorder every queued event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The end of representable time.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Constructs from (possibly fractional) milliseconds.
    ///
    /// Negative and NaN inputs map to zero.
    pub fn from_ms(ms: f64) -> Self {
        // NaN and negatives both map to zero.
        if ms.is_nan() || ms <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((ms * 1e6).round().min(u64::MAX as f64) as u64)
    }

    /// Constructs from (possibly fractional) seconds.
    ///
    /// Negative and NaN inputs map to zero.
    pub fn from_secs(secs: f64) -> Self {
        Self::from_ms(secs * 1e3)
    }

    /// Value in nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Value in milliseconds.
    pub fn as_ms(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in seconds.
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference (`self - other`, or zero if `other` is later).
    pub fn saturating_sub(&self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// Saturating subtraction; see type-level docs for rationale.
    fn sub(self, rhs: SimTime) -> SimTime {
        self.saturating_sub(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs())
        } else {
            write!(f, "{:.3}ms", self.as_ms())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let t = SimTime::from_ms(12.5);
        assert_eq!(t.as_nanos(), 12_500_000);
        assert!((t.as_ms() - 12.5).abs() < 1e-12);
        assert!((SimTime::from_secs(2.0).as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn negative_and_nan_map_to_zero() {
        assert_eq!(SimTime::from_ms(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_ms(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs(-0.5), SimTime::ZERO);
    }

    #[test]
    fn addition_saturates() {
        assert_eq!(SimTime::MAX + SimTime::from_ms(1.0), SimTime::MAX);
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let a = SimTime::from_ms(1.0);
        let b = SimTime::from_ms(2.0);
        assert_eq!(a - b, SimTime::ZERO);
        assert_eq!(b - a, SimTime::from_ms(1.0));
    }

    #[test]
    fn ordering_follows_nanos() {
        assert!(SimTime::from_ms(1.0) < SimTime::from_ms(1.001));
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimTime::from_ms(1.5)), "1.500ms");
        assert_eq!(format!("{}", SimTime::from_secs(2.0)), "2.000s");
    }
}
