//! Deterministic event queue.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event plus its metadata inside the queue.
///
/// The sequence number makes ordering total and deterministic: two events at
/// the same timestamp pop in the order they were pushed (FIFO), regardless
/// of heap internals.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic FIFO ordering
/// among events that share a timestamp.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue { heap: BinaryHeap::with_capacity(capacity), next_seq: 0 }
    }

    /// Enqueues `event` to fire at `time`.
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Timestamp of the earliest queued event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Discards all queued events (sequence numbering continues).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(5.0), "c");
        q.push(SimTime::from_ms(1.0), "a");
        q.push(SimTime::from_ms(3.0), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ms(2.0), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_ms(2.0)));
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Pop order is exactly (time, insertion order) for any input
            /// sequence.
            #[test]
            fn pops_are_stably_sorted(times in proptest::collection::vec(0u64..100, 0..200)) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(SimTime::from_micros(t), i);
                }
                let mut expected: Vec<(u64, usize)> =
                    times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
                expected.sort();
                let mut popped = Vec::new();
                while let Some((t, i)) = q.pop() {
                    popped.push((t.as_nanos() / 1_000, i));
                }
                prop_assert_eq!(popped, expected);
            }

            /// len() tracks pushes and pops.
            #[test]
            fn len_is_consistent(ops in proptest::collection::vec(any::<bool>(), 0..100)) {
                let mut q = EventQueue::new();
                let mut expected = 0usize;
                for (i, push) in ops.into_iter().enumerate() {
                    if push {
                        q.push(SimTime::from_micros(i as u64), i);
                        expected += 1;
                    } else if q.pop().is_some() {
                        expected -= 1;
                    }
                    prop_assert_eq!(q.len(), expected);
                    prop_assert_eq!(q.is_empty(), expected == 0);
                }
            }
        }
    }

    #[test]
    fn fifo_survives_interleaved_pushes_and_pops() {
        let mut q = EventQueue::new();
        let t = SimTime::from_ms(1.0);
        q.push(t, 0);
        q.push(t, 1);
        assert_eq!(q.pop().unwrap().1, 0);
        q.push(t, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
    }
}
