//! Simulating measurements for UGs without probes (Appendix C).
//!
//! Probes cover only part of the traffic. For the remaining UGs, the paper
//! "finds all RIPE Atlas probes within 500 km of the UG whose median
//! anycast latency to Azure is within 10 ms of the UG's anycast latency"
//! and draws each ingress's improvement-over-anycast from the union of
//! those probes' observed improvements — same *distribution*, not same
//! values. Probes in well-routed areas thus induce well-routed synthetic
//! neighbors, and vice versa.

use crate::ground::GroundTruth;
use crate::probes::ProbeFleet;
use crate::ug::{UgId, UserGroup};
use painter_eventsim::{derive_seed, SimRng};
use painter_geo::metro;
use painter_topology::PeeringId;

/// Default neighbor radius from the paper.
pub const DEFAULT_RADIUS_KM: f64 = 500.0;
/// Default anycast-latency similarity tolerance from the paper.
pub const DEFAULT_ANYCAST_TOLERANCE_MS: f64 = 10.0;

/// Per-UG simulated measurements: latency through each of the UG's
/// reachable ingresses.
pub type SimulatedMeasurements = Vec<Vec<(PeeringId, f64)>>;

/// Extrapolates probe measurements to the whole UG population.
///
/// * Probe UGs get their true per-ingress latencies (the probe measured
///   them).
/// * Non-probe UGs get latencies synthesized as
///   `anycast latency − improvement` with improvements drawn from nearby,
///   similar-anycast probes' observed improvement distributions; the
///   fallback when no neighbor qualifies is the global probe pool.
///
/// `anycast` carries each UG's anycast latency (`None` = unreachable, which
/// the substrate should not produce for connected stubs).
pub fn extrapolate_improvements(
    ugs: &[UserGroup],
    fleet: &ProbeFleet,
    gt: &GroundTruth<'_>,
    anycast: &[Option<f64>],
    radius_km: f64,
    anycast_tolerance_ms: f64,
    seed: u64,
) -> SimulatedMeasurements {
    assert_eq!(ugs.len(), anycast.len());

    // Collect each probe's observed improvements over anycast.
    let probe_ids = fleet.probe_ugs();
    let mut probe_improvements: Vec<(UgId, Vec<f64>)> = Vec::with_capacity(probe_ids.len());
    let mut global_pool: Vec<f64> = Vec::new();
    for &pid in &probe_ids {
        let Some(pa) = anycast[pid.idx()] else { continue };
        let mut imps = Vec::new();
        for p in gt.reachable_peerings(pid) {
            if let Some(lat) = gt.latency(pid, p) {
                imps.push(pa - lat); // positive = better than anycast
            }
        }
        if !imps.is_empty() {
            global_pool.extend_from_slice(&imps);
            probe_improvements.push((pid, imps));
        }
    }

    let mut out: SimulatedMeasurements = Vec::with_capacity(ugs.len());
    for ug in ugs {
        let reachable = gt.reachable_peerings(ug.id);
        if fleet.has_probe(ug.id) {
            // Real measurements.
            out.push(
                reachable
                    .into_iter()
                    .filter_map(|p| gt.latency(ug.id, p).map(|l| (p, l)))
                    .collect(),
            );
            continue;
        }
        let Some(ug_anycast) = anycast[ug.id.idx()] else {
            out.push(Vec::new());
            continue;
        };
        // Gather the neighbor pool.
        let here = metro(ug.metro).point();
        let mut pool: Vec<f64> = Vec::new();
        for (pid, imps) in &probe_improvements {
            let pu = &ugs[pid.idx()];
            let close = metro(pu.metro).point().haversine_km(&here) <= radius_km;
            let similar = anycast[pid.idx()]
                .map(|pa| (pa - ug_anycast).abs() <= anycast_tolerance_ms)
                .unwrap_or(false);
            if close && similar {
                pool.extend_from_slice(imps);
            }
        }
        let pool: &[f64] = if pool.is_empty() { &global_pool } else { &pool };
        let mut rng = SimRng::new(derive_seed(seed, 0xE0_0000 | ug.id.0 as u64));
        let mut rows = Vec::with_capacity(reachable.len());
        for p in reachable {
            if pool.is_empty() {
                // Degenerate: no probes at all — fall back to truth.
                if let Some(l) = gt.latency(ug.id, p) {
                    rows.push((p, l));
                }
                continue;
            }
            let imp = pool[rng.index(pool.len())];
            rows.push((p, (ug_anycast - imp).max(ug.last_mile_ms)));
        }
        out.push(rows);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ug::build_user_groups;
    use painter_topology::{Deployment, DeploymentConfig, TopologyConfig};

    struct Fix {
        net: painter_topology::Internet,
        dep: Deployment,
        ugs: Vec<UserGroup>,
    }

    fn fix() -> Fix {
        let net = painter_topology::generate(TopologyConfig::tiny(71));
        let dep = Deployment::generate(&net.graph, &DeploymentConfig::tiny(71));
        let ugs = build_user_groups(&net, 71);
        Fix { net, dep, ugs }
    }

    fn anycast_latencies(gt: &mut GroundTruth<'_>, ugs: &[UserGroup]) -> Vec<Option<f64>> {
        let all: Vec<PeeringId> = gt.deployment().peerings().iter().map(|p| p.id).collect();
        ugs.iter().map(|u| gt.route_under(&all, u.id).map(|(_, l)| l)).collect()
    }

    #[test]
    fn probe_ugs_get_true_measurements() {
        let f = fix();
        let mut gt = GroundTruth::compute(&f.net.graph, &f.dep, &f.ugs, 9);
        let anycast = anycast_latencies(&mut gt, &f.ugs);
        let fleet = ProbeFleet::select(&f.ugs, 0.5, 1);
        let sims = extrapolate_improvements(
            &f.ugs,
            &fleet,
            &gt,
            &anycast,
            DEFAULT_RADIUS_KM,
            DEFAULT_ANYCAST_TOLERANCE_MS,
            1,
        );
        for &pid in &fleet.probe_ugs() {
            for &(peering, lat) in &sims[pid.idx()] {
                assert_eq!(Some(lat), gt.latency(pid, peering));
            }
        }
    }

    #[test]
    fn non_probe_ugs_get_rows_for_all_reachable_ingresses() {
        let f = fix();
        let mut gt = GroundTruth::compute(&f.net.graph, &f.dep, &f.ugs, 9);
        let anycast = anycast_latencies(&mut gt, &f.ugs);
        let fleet = ProbeFleet::select(&f.ugs, 0.4, 2);
        let sims = extrapolate_improvements(
            &f.ugs,
            &fleet,
            &gt,
            &anycast,
            DEFAULT_RADIUS_KM,
            DEFAULT_ANYCAST_TOLERANCE_MS,
            2,
        );
        for ug in &f.ugs {
            if !fleet.has_probe(ug.id) {
                assert_eq!(sims[ug.id.idx()].len(), gt.reachable_peerings(ug.id).len());
                for &(_, lat) in &sims[ug.id.idx()] {
                    assert!(lat > 0.0 && lat.is_finite());
                }
            }
        }
    }

    #[test]
    fn extrapolation_is_deterministic() {
        let f = fix();
        let mut gt = GroundTruth::compute(&f.net.graph, &f.dep, &f.ugs, 9);
        let anycast = anycast_latencies(&mut gt, &f.ugs);
        let fleet = ProbeFleet::select(&f.ugs, 0.4, 3);
        let run = |seed| {
            extrapolate_improvements(
                &f.ugs,
                &fleet,
                &gt,
                &anycast,
                DEFAULT_RADIUS_KM,
                DEFAULT_ANYCAST_TOLERANCE_MS,
                seed,
            )
        };
        let a = run(7);
        let b = run(7);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.len(), rb.len());
            for ((pa, la), (pb, lb)) in ra.iter().zip(rb) {
                assert_eq!(pa, pb);
                assert_eq!(la.to_bits(), lb.to_bits());
            }
        }
    }

    #[test]
    fn empty_fleet_falls_back_to_truth() {
        let f = fix();
        let mut gt = GroundTruth::compute(&f.net.graph, &f.dep, &f.ugs, 9);
        let anycast = anycast_latencies(&mut gt, &f.ugs);
        let fleet = ProbeFleet::select(&f.ugs, 0.0, 4);
        let sims = extrapolate_improvements(
            &f.ugs,
            &fleet,
            &gt,
            &anycast,
            DEFAULT_RADIUS_KM,
            DEFAULT_ANYCAST_TOLERANCE_MS,
            4,
        );
        for ug in &f.ugs {
            for &(peering, lat) in &sims[ug.id.idx()] {
                assert_eq!(Some(lat), gt.latency(ug.id, peering));
            }
        }
    }
}
