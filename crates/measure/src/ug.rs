//! User groups.
//!
//! §3.1: "we logically group users in the same AS and large metropolitan
//! area, referring to each group as a UG (user group) ... w(UG) is the
//! weight (e.g., traffic volume) of UG". Here every stub (enterprise) AS of
//! the generated Internet yields one UG at its home metro, with a
//! heavy-tailed traffic weight — a handful of large enterprises dominate
//! volume, as in the Azure logs the paper aggregates.

use painter_eventsim::SimRng;
use painter_geo::{metro, MetroId};
use painter_topology::{AsId, Internet};

/// Dense identifier of a user group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UgId(pub u32);

impl UgId {
    pub fn idx(&self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for UgId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "UG{}", self.0)
    }
}

/// A user group: users of one AS in one metro.
#[derive(Debug, Clone)]
pub struct UserGroup {
    pub id: UgId,
    /// The enterprise/stub AS the users sit in.
    pub asn: AsId,
    /// The metro the users sit at.
    pub metro: MetroId,
    /// Relative traffic volume (the paper's `w(UG)`).
    pub weight: f64,
    /// Last-mile round-trip delay (access network, Wi-Fi, DSL...) added to
    /// every path of this UG; it shifts absolute latency but never
    /// improvement.
    pub last_mile_ms: f64,
}

/// Builds the UG population from an Internet's stub ASes.
///
/// Weights are `metro weight × truncated Pareto(α=1.4)` — heavy-tailed
/// within a metro (a few large enterprises dominate), scaled by metro
/// size across metros, but truncated so no single enterprise carries a
/// double-digit share of world traffic (none does, even at Azure).
/// Last-mile delays are log-normal around ~6 ms.
pub fn build_user_groups(internet: &Internet, seed: u64) -> Vec<UserGroup> {
    let mut rng = SimRng::stream(seed, 0x5547);
    let mut ugs = Vec::new();
    for stub in internet.graph.stubs() {
        let home = stub.presence[0];
        let weight = metro(home).weight * rng.pareto(1.0, 1.4).min(30.0);
        let last_mile_ms = rng.log_normal(6.0, 0.5).clamp(1.0, 40.0);
        ugs.push(UserGroup {
            id: UgId(ugs.len() as u32),
            asn: stub.id,
            metro: home,
            weight,
            last_mile_ms,
        });
    }
    ugs
}

/// Total weight of a UG population.
pub fn total_weight(ugs: &[UserGroup]) -> f64 {
    ugs.iter().map(|u| u.weight).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use painter_topology::TopologyConfig;

    fn tiny() -> Internet {
        painter_topology::generate(TopologyConfig::tiny(31))
    }

    #[test]
    fn one_ug_per_stub() {
        let net = tiny();
        let ugs = build_user_groups(&net, 1);
        assert_eq!(ugs.len(), net.graph.stubs().count());
        for (i, ug) in ugs.iter().enumerate() {
            assert_eq!(ug.id, UgId(i as u32));
        }
    }

    #[test]
    fn build_is_deterministic() {
        let net = tiny();
        let a = build_user_groups(&net, 5);
        let b = build_user_groups(&net, 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.weight.to_bits(), y.weight.to_bits());
            assert_eq!(x.last_mile_ms.to_bits(), y.last_mile_ms.to_bits());
        }
    }

    #[test]
    fn weights_are_heavy_tailed() {
        let net = tiny();
        let ugs = build_user_groups(&net, 2);
        let total = total_weight(&ugs);
        let mut weights: Vec<f64> = ugs.iter().map(|u| u.weight).collect();
        weights.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top10: f64 = weights.iter().take(ugs.len() / 10).sum();
        assert!(top10 / total > 0.25, "top decile should dominate, got {}", top10 / total);
    }

    #[test]
    fn last_mile_delays_are_bounded() {
        let net = tiny();
        for ug in build_user_groups(&net, 3) {
            assert!(ug.last_mile_ms >= 1.0 && ug.last_mile_ms <= 40.0);
        }
    }

    #[test]
    fn ug_metro_matches_stub_home() {
        let net = tiny();
        let ugs = build_user_groups(&net, 4);
        for ug in &ugs {
            assert_eq!(net.graph.node(ug.asn).presence[0], ug.metro);
        }
    }
}
