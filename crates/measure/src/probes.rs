//! The vantage-point probe fleet.
//!
//! §5.1.1: "RIPE Atlas covers a relatively small number of UGs (only 47% of
//! Azure traffic volume)". Probes are placed preferentially in high-weight
//! UGs (RIPE Atlas hosts skew toward well-connected networks), and the
//! fleet exposes exactly the coverage metric the paper reports.

use crate::ug::UgId;
use crate::ug::UserGroup;
use painter_eventsim::SimRng;

/// The subset of user groups hosting measurement probes.
#[derive(Debug, Clone)]
pub struct ProbeFleet {
    has_probe: Vec<bool>,
    covered_weight: f64,
    total_weight: f64,
}

impl ProbeFleet {
    /// Selects probes until roughly `target_coverage` of total UG traffic
    /// weight is covered, sampling UGs with probability proportional to
    /// weight (heavier UGs are likelier to host probes).
    pub fn select(ugs: &[UserGroup], target_coverage: f64, seed: u64) -> Self {
        let mut rng = SimRng::stream(seed, 0x70_72_6f_62);
        let total_weight: f64 = ugs.iter().map(|u| u.weight).sum();
        let target = total_weight * target_coverage.clamp(0.0, 1.0);
        let mut has_probe = vec![false; ugs.len()];
        let mut covered = 0.0;
        // Weighted sampling without replacement until the target is met.
        let mut order: Vec<usize> = (0..ugs.len()).collect();
        // Exponential-sort trick: key = -ln(U)/w gives weight-proportional
        // order.
        let mut keys: Vec<f64> = Vec::with_capacity(ugs.len());
        for u in ugs {
            let r: f64 = (1.0_f64 - rng.unit()).ln();
            keys.push(-r / u.weight.max(1e-12));
        }
        order.sort_by(|&a, &b| keys[a].partial_cmp(&keys[b]).expect("finite"));
        for i in order {
            if covered >= target {
                break;
            }
            has_probe[i] = true;
            covered += ugs[i].weight;
        }
        ProbeFleet { has_probe, covered_weight: covered, total_weight }
    }

    /// True if the UG hosts a probe.
    pub fn has_probe(&self, ug: UgId) -> bool {
        self.has_probe[ug.idx()]
    }

    /// Knocks out probes in seeded random order until at least `fraction`
    /// of the fleet's covered weight is gone (a chaos campaign's
    /// probe-fleet loss). `ugs` must be the list the fleet was selected
    /// from. Returns the number of probes removed.
    pub fn knock_out(&mut self, ugs: &[UserGroup], fraction: f64, seed: u64) -> usize {
        let fraction = fraction.clamp(0.0, 1.0);
        let goal = self.covered_weight * fraction;
        if goal <= 0.0 {
            return 0;
        }
        let mut rng = SimRng::stream(seed, 0x6b_6e_6f_63);
        let mut victims: Vec<usize> =
            self.has_probe.iter().enumerate().filter(|(_, &p)| p).map(|(i, _)| i).collect();
        // Fisher–Yates on the (deterministic) index list.
        for i in (1..victims.len()).rev() {
            victims.swap(i, rng.index(i + 1));
        }
        let mut removed_weight = 0.0;
        let mut removed = 0;
        for i in victims {
            if removed_weight >= goal {
                break;
            }
            self.has_probe[i] = false;
            removed_weight += ugs[i].weight;
            removed += 1;
        }
        self.covered_weight = (self.covered_weight - removed_weight).max(0.0);
        removed
    }

    /// All probe-hosting UG ids.
    pub fn probe_ugs(&self) -> Vec<UgId> {
        self.has_probe.iter().enumerate().filter(|(_, &p)| p).map(|(i, _)| UgId(i as u32)).collect()
    }

    /// Fraction of total traffic weight covered by probes.
    pub fn coverage(&self) -> f64 {
        if self.total_weight <= 0.0 {
            0.0
        } else {
            self.covered_weight / self.total_weight
        }
    }

    /// Number of probes.
    pub fn len(&self) -> usize {
        self.has_probe.iter().filter(|&&p| p).count()
    }

    /// True if the fleet has no probes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ug::build_user_groups;
    use painter_topology::TopologyConfig;

    fn ugs() -> Vec<UserGroup> {
        let net = painter_topology::generate(TopologyConfig::tiny(51));
        build_user_groups(&net, 51)
    }

    #[test]
    fn coverage_hits_target() {
        let ugs = ugs();
        let fleet = ProbeFleet::select(&ugs, 0.47, 1);
        assert!(fleet.coverage() >= 0.47, "got {}", fleet.coverage());
        assert!(fleet.coverage() < 0.8, "overshoot: {}", fleet.coverage());
        assert!(!fleet.is_empty());
    }

    #[test]
    fn zero_target_selects_nothing() {
        let ugs = ugs();
        let fleet = ProbeFleet::select(&ugs, 0.0, 1);
        assert!(fleet.is_empty());
        assert_eq!(fleet.coverage(), 0.0);
    }

    #[test]
    fn full_target_selects_everything() {
        let ugs = ugs();
        let fleet = ProbeFleet::select(&ugs, 1.0, 1);
        assert_eq!(fleet.len(), ugs.len());
    }

    #[test]
    fn probes_skew_toward_heavy_ugs() {
        let ugs = ugs();
        let fleet = ProbeFleet::select(&ugs, 0.4, 2);
        // Covered weight per probe should exceed average weight per UG.
        let avg_all: f64 = ugs.iter().map(|u| u.weight).sum::<f64>() / ugs.len() as f64;
        let avg_probe: f64 = fleet.probe_ugs().iter().map(|&u| ugs[u.idx()].weight).sum::<f64>()
            / fleet.len() as f64;
        assert!(avg_probe > avg_all, "probe avg {avg_probe} <= overall avg {avg_all}");
    }

    #[test]
    fn selection_is_deterministic() {
        let ugs = ugs();
        let a = ProbeFleet::select(&ugs, 0.47, 3);
        let b = ProbeFleet::select(&ugs, 0.47, 3);
        assert_eq!(a.probe_ugs(), b.probe_ugs());
    }

    #[test]
    fn knock_out_removes_the_requested_weight_fraction() {
        let ugs = ugs();
        let mut fleet = ProbeFleet::select(&ugs, 0.6, 4);
        let before = fleet.coverage();
        let removed = fleet.knock_out(&ugs, 0.5, 9);
        assert!(removed > 0);
        let after = fleet.coverage();
        assert!(after < before * 0.55, "coverage {before} -> {after}");
        assert!(after > 0.0, "half the fleet must survive");
        // Coverage bookkeeping stays consistent with the membership list.
        let recomputed: f64 = fleet.probe_ugs().iter().map(|&u| ugs[u.idx()].weight).sum::<f64>()
            / ugs.iter().map(|u| u.weight).sum::<f64>();
        assert!((recomputed - after).abs() < 1e-9);
    }

    #[test]
    fn knock_out_is_deterministic_and_seed_sensitive() {
        let ugs = ugs();
        let run = |seed| {
            let mut fleet = ProbeFleet::select(&ugs, 0.6, 4);
            fleet.knock_out(&ugs, 0.3, seed);
            fleet.probe_ugs()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2), "different seeds should pick different victims");
    }

    #[test]
    fn knock_out_full_fraction_empties_the_fleet() {
        let ugs = ugs();
        let mut fleet = ProbeFleet::select(&ugs, 0.5, 4);
        fleet.knock_out(&ugs, 1.0, 1);
        assert!(fleet.is_empty());
        assert_eq!(fleet.coverage(), 0.0);
        // Knocking out an empty fleet is a no-op.
        assert_eq!(fleet.knock_out(&ugs, 0.5, 1), 0);
    }
}
