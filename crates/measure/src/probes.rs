//! The vantage-point probe fleet.
//!
//! §5.1.1: "RIPE Atlas covers a relatively small number of UGs (only 47% of
//! Azure traffic volume)". Probes are placed preferentially in high-weight
//! UGs (RIPE Atlas hosts skew toward well-connected networks), and the
//! fleet exposes exactly the coverage metric the paper reports.

use crate::ug::UgId;
use crate::ug::UserGroup;
use painter_eventsim::SimRng;

/// The subset of user groups hosting measurement probes.
#[derive(Debug, Clone)]
pub struct ProbeFleet {
    has_probe: Vec<bool>,
    covered_weight: f64,
    total_weight: f64,
}

impl ProbeFleet {
    /// Selects probes until roughly `target_coverage` of total UG traffic
    /// weight is covered, sampling UGs with probability proportional to
    /// weight (heavier UGs are likelier to host probes).
    pub fn select(ugs: &[UserGroup], target_coverage: f64, seed: u64) -> Self {
        let mut rng = SimRng::stream(seed, 0x70_72_6f_62);
        let total_weight: f64 = ugs.iter().map(|u| u.weight).sum();
        let target = total_weight * target_coverage.clamp(0.0, 1.0);
        let mut has_probe = vec![false; ugs.len()];
        let mut covered = 0.0;
        // Weighted sampling without replacement until the target is met.
        let mut order: Vec<usize> = (0..ugs.len()).collect();
        // Exponential-sort trick: key = -ln(U)/w gives weight-proportional
        // order.
        let mut keys: Vec<f64> = Vec::with_capacity(ugs.len());
        for u in ugs {
            let r: f64 = (1.0_f64 - rng.unit()).ln();
            keys.push(-r / u.weight.max(1e-12));
        }
        order.sort_by(|&a, &b| keys[a].partial_cmp(&keys[b]).expect("finite"));
        for i in order {
            if covered >= target {
                break;
            }
            has_probe[i] = true;
            covered += ugs[i].weight;
        }
        ProbeFleet { has_probe, covered_weight: covered, total_weight }
    }

    /// True if the UG hosts a probe.
    pub fn has_probe(&self, ug: UgId) -> bool {
        self.has_probe[ug.idx()]
    }

    /// All probe-hosting UG ids.
    pub fn probe_ugs(&self) -> Vec<UgId> {
        self.has_probe.iter().enumerate().filter(|(_, &p)| p).map(|(i, _)| UgId(i as u32)).collect()
    }

    /// Fraction of total traffic weight covered by probes.
    pub fn coverage(&self) -> f64 {
        if self.total_weight <= 0.0 {
            0.0
        } else {
            self.covered_weight / self.total_weight
        }
    }

    /// Number of probes.
    pub fn len(&self) -> usize {
        self.has_probe.iter().filter(|&&p| p).count()
    }

    /// True if the fleet has no probes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ug::build_user_groups;
    use painter_topology::TopologyConfig;

    fn ugs() -> Vec<UserGroup> {
        let net = painter_topology::generate(TopologyConfig::tiny(51));
        build_user_groups(&net, 51)
    }

    #[test]
    fn coverage_hits_target() {
        let ugs = ugs();
        let fleet = ProbeFleet::select(&ugs, 0.47, 1);
        assert!(fleet.coverage() >= 0.47, "got {}", fleet.coverage());
        assert!(fleet.coverage() < 0.8, "overshoot: {}", fleet.coverage());
        assert!(!fleet.is_empty());
    }

    #[test]
    fn zero_target_selects_nothing() {
        let ugs = ugs();
        let fleet = ProbeFleet::select(&ugs, 0.0, 1);
        assert!(fleet.is_empty());
        assert_eq!(fleet.coverage(), 0.0);
    }

    #[test]
    fn full_target_selects_everything() {
        let ugs = ugs();
        let fleet = ProbeFleet::select(&ugs, 1.0, 1);
        assert_eq!(fleet.len(), ugs.len());
    }

    #[test]
    fn probes_skew_toward_heavy_ugs() {
        let ugs = ugs();
        let fleet = ProbeFleet::select(&ugs, 0.4, 2);
        // Covered weight per probe should exceed average weight per UG.
        let avg_all: f64 = ugs.iter().map(|u| u.weight).sum::<f64>() / ugs.len() as f64;
        let avg_probe: f64 = fleet.probe_ugs().iter().map(|&u| ugs[u.idx()].weight).sum::<f64>()
            / fleet.len() as f64;
        assert!(avg_probe > avg_all, "probe avg {avg_probe} <= overall avg {avg_all}");
    }

    #[test]
    fn selection_is_deterministic() {
        let ugs = ugs();
        let a = ProbeFleet::select(&ugs, 0.47, 3);
        let b = ProbeFleet::select(&ugs, 0.47, 3);
        assert_eq!(a.probe_ugs(), b.probe_ugs());
    }
}
