//! The ping measurement primitive.
//!
//! §5.1.1: "We measure all targets using ping 7 times and compute minimum
//! latencies to approximate propagation delay." Each ping sample is the
//! true propagation RTT plus non-negative queueing/processing noise, so the
//! minimum converges on propagation delay as sample count grows.

use painter_eventsim::SimRng;

/// Default sample count, from the paper.
pub const DEFAULT_PING_COUNT: usize = 7;

/// A seeded ping simulator.
///
/// Noise model: exponential queueing delay (mean `noise_mean_ms`) plus a
/// rare "spike" (probability `spike_prob`, adding tens of ms) modeling
/// transient congestion. Noise is strictly additive — propagation delay is
/// a floor, as in real networks.
pub struct Pinger {
    rng: SimRng,
    noise_mean_ms: f64,
    spike_prob: f64,
}

impl Pinger {
    /// A pinger with default noise (1.5 ms mean queueing, 2% spikes).
    pub fn new(seed: u64) -> Self {
        Self::with_noise(seed, 1.5, 0.02)
    }

    /// A pinger with explicit noise parameters.
    pub fn with_noise(seed: u64, noise_mean_ms: f64, spike_prob: f64) -> Self {
        Pinger { rng: SimRng::stream(seed, 0x70_69_6e_67), noise_mean_ms, spike_prob }
    }

    /// One ping sample toward a target with true RTT `true_rtt_ms`.
    /// Returns `None` on packet loss (1% base loss).
    pub fn sample(&mut self, true_rtt_ms: f64) -> Option<f64> {
        if self.rng.chance(0.01) {
            return None;
        }
        let mut noise = self.rng.exponential(self.noise_mean_ms);
        if self.rng.chance(self.spike_prob) {
            noise += self.rng.uniform(10.0, 60.0);
        }
        Some(true_rtt_ms + noise)
    }

    /// Pings `count` times and returns the minimum observed RTT, or `None`
    /// if every probe was lost.
    pub fn min_rtt(&mut self, true_rtt_ms: f64, count: usize) -> Option<f64> {
        let mut best: Option<f64> = None;
        for _ in 0..count {
            if let Some(s) = self.sample(true_rtt_ms) {
                best = Some(best.map_or(s, |b: f64| b.min(s)));
            }
        }
        best
    }

    /// The paper's measurement: min of 7 pings.
    pub fn measure(&mut self, true_rtt_ms: f64) -> Option<f64> {
        self.min_rtt(true_rtt_ms, DEFAULT_PING_COUNT)
    }
}

/// Minimum of an explicit sample list (`None` for an empty list).
pub fn min_of_pings(samples: &[f64]) -> Option<f64> {
    samples.iter().copied().min_by(|a, b| a.partial_cmp(b).expect("finite"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_never_undershoot_propagation() {
        let mut p = Pinger::new(1);
        for _ in 0..1000 {
            if let Some(s) = p.sample(42.0) {
                assert!(s >= 42.0);
            }
        }
    }

    #[test]
    fn min_of_seven_approaches_truth() {
        let mut p = Pinger::new(2);
        let mut total_err = 0.0;
        let n = 500;
        for _ in 0..n {
            let m = p.measure(30.0).unwrap();
            total_err += m - 30.0;
        }
        let mean_err = total_err / n as f64;
        // Mean of min-of-7 exponential(1.5) noise is ~0.2 ms.
        assert!(mean_err < 1.0, "got {mean_err}");
    }

    #[test]
    fn min_of_pings_handles_lists() {
        assert_eq!(min_of_pings(&[3.0, 1.0, 2.0]), Some(1.0));
        assert_eq!(min_of_pings(&[]), None);
    }

    #[test]
    fn measurement_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = Pinger::new(seed);
            (0..10).map(|_| p.measure(20.0)).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn all_lost_returns_none() {
        // Force loss by sampling zero times.
        let mut p = Pinger::new(3);
        assert_eq!(p.min_rtt(10.0, 0), None);
    }
}
