//! Anycast catchment analysis (Verfploeter-style).
//!
//! Operators need to know *where traffic lands* under an advertisement —
//! the catchment of each PoP and ingress. The paper leans on exactly this
//! view of Azure's logs (per-PoP volumes in Fig. 9a, regional ingress
//! distributions in Fig. 11a); this module computes it for any
//! configuration, so it doubles as the ops-facing reporting surface of
//! the library.

use crate::ground::GroundTruth;
use crate::ug::UgId;
use painter_geo::{metro, Region};
use painter_topology::{PeeringId, PopId};
use std::collections::BTreeMap;

/// Catchment of one advertisement (single prefix): who lands where.
#[derive(Debug, Clone, Default)]
pub struct Catchment {
    /// Weighted traffic per ingress peering.
    pub per_ingress: BTreeMap<PeeringId, f64>,
    /// Weighted traffic per PoP.
    pub per_pop: BTreeMap<PopId, f64>,
    /// Weighted traffic per (user region, PoP) — spotting cross-region
    /// hauls (the Fig. 1 pathology) at a glance.
    pub per_region_pop: BTreeMap<(Region, PopId), f64>,
    /// Traffic with no route under this advertisement.
    pub unreachable_weight: f64,
    /// Total weight considered.
    pub total_weight: f64,
}

impl Catchment {
    /// Fraction of traffic landing at `pop`.
    pub fn pop_share(&self, pop: PopId) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        self.per_pop.get(&pop).copied().unwrap_or(0.0) / self.total_weight
    }

    /// Weighted fraction of traffic that lands at a PoP outside the
    /// user's own region — the path-inflation smell.
    pub fn cross_region_share(&self, pop_region: impl Fn(PopId) -> Region) -> f64 {
        if self.total_weight <= 0.0 {
            return 0.0;
        }
        let crossing: f64 = self
            .per_region_pop
            .iter()
            .filter(|((user_region, pop), _)| *user_region != pop_region(*pop))
            .map(|(_, w)| *w)
            .sum();
        crossing / self.total_weight
    }
}

/// Computes the catchment of a prefix advertised via `advertised`.
pub fn catchment(gt: &mut GroundTruth<'_>, advertised: &[PeeringId]) -> Catchment {
    let ugs = gt.ugs().to_vec();
    let mut out = Catchment::default();
    for ug in &ugs {
        out.total_weight += ug.weight;
        match gt.route_under(advertised, ug.id) {
            Some((ingress, _)) => {
                let pop = gt.deployment().peering(ingress).pop;
                *out.per_ingress.entry(ingress).or_insert(0.0) += ug.weight;
                *out.per_pop.entry(pop).or_insert(0.0) += ug.weight;
                *out.per_region_pop.entry((metro(ug.metro).region, pop)).or_insert(0.0) +=
                    ug.weight;
            }
            None => out.unreachable_weight += ug.weight,
        }
    }
    out
}

/// The UGs whose traffic lands at `pop` under `advertised` — the inverse
/// query ("who do I disturb if I drain this PoP?").
pub fn pop_catchment_members(
    gt: &mut GroundTruth<'_>,
    advertised: &[PeeringId],
    pop: PopId,
) -> Vec<UgId> {
    let ugs = gt.ugs().to_vec();
    ugs.iter()
        .filter(|ug| {
            gt.route_under(advertised, ug.id)
                .map(|(ingress, _)| gt.deployment().peering(ingress).pop == pop)
                .unwrap_or(false)
        })
        .map(|ug| ug.id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ug::build_user_groups;
    use painter_topology::{Deployment, DeploymentConfig, TopologyConfig};

    fn fixture() -> (painter_topology::Internet, Deployment, Vec<crate::ug::UserGroup>) {
        let net = painter_topology::generate(TopologyConfig::tiny(88));
        let dep = Deployment::generate(&net.graph, &DeploymentConfig::tiny(88));
        let ugs = build_user_groups(&net, 88);
        (net, dep, ugs)
    }

    #[test]
    fn anycast_catchment_accounts_for_all_weight() {
        let (net, dep, ugs) = fixture();
        let mut gt = GroundTruth::compute(&net.graph, &dep, &ugs, 9);
        let all: Vec<PeeringId> = dep.peerings().iter().map(|p| p.id).collect();
        let c = catchment(&mut gt, &all);
        let landed: f64 = c.per_pop.values().sum();
        assert!((landed + c.unreachable_weight - c.total_weight).abs() < 1e-6);
        assert!(c.unreachable_weight < 1e-9, "anycast reaches everyone");
        // Shares sum to 1.
        let share_sum: f64 = dep.pops().iter().map(|p| c.pop_share(p.id)).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn per_ingress_refines_per_pop() {
        let (net, dep, ugs) = fixture();
        let mut gt = GroundTruth::compute(&net.graph, &dep, &ugs, 9);
        let all: Vec<PeeringId> = dep.peerings().iter().map(|p| p.id).collect();
        let c = catchment(&mut gt, &all);
        for (&pop, &w) in &c.per_pop {
            let ingress_sum: f64 = c
                .per_ingress
                .iter()
                .filter(|(pe, _)| dep.peering(**pe).pop == pop)
                .map(|(_, w)| *w)
                .sum();
            assert!((ingress_sum - w).abs() < 1e-6);
        }
    }

    #[test]
    fn single_ingress_catchment_is_all_or_unreachable() {
        let (net, dep, ugs) = fixture();
        let mut gt = GroundTruth::compute(&net.graph, &dep, &ugs, 9);
        let one = vec![dep.peerings()[0].id];
        let c = catchment(&mut gt, &one);
        assert!(c.per_ingress.len() <= 1);
        let landed: f64 = c.per_ingress.values().sum();
        assert!((landed + c.unreachable_weight - c.total_weight).abs() < 1e-6);
    }

    #[test]
    fn members_match_catchment_weights() {
        let (net, dep, ugs) = fixture();
        let mut gt = GroundTruth::compute(&net.graph, &dep, &ugs, 9);
        let all: Vec<PeeringId> = dep.peerings().iter().map(|p| p.id).collect();
        let c = catchment(&mut gt, &all);
        for pop in dep.pops() {
            let members = pop_catchment_members(&mut gt, &all, pop.id);
            let member_weight: f64 = members.iter().map(|id| ugs[id.idx()].weight).sum();
            let expected = c.per_pop.get(&pop.id).copied().unwrap_or(0.0);
            assert!((member_weight - expected).abs() < 1e-6, "{}", pop.id);
        }
    }

    #[test]
    fn cross_region_share_detects_hauls() {
        let (net, dep, ugs) = fixture();
        let mut gt = GroundTruth::compute(&net.graph, &dep, &ugs, 9);
        let all: Vec<PeeringId> = dep.peerings().iter().map(|p| p.id).collect();
        let c = catchment(&mut gt, &all);
        let share = c.cross_region_share(|pop| metro(dep.pop(pop).metro).region);
        assert!((0.0..=1.0).contains(&share));
        // Restricting to a single ingress forces most regions to haul.
        let one = vec![dep.peerings()[0].id];
        let c1 = catchment(&mut gt, &one);
        let share1 = c1.cross_region_share(|pop| metro(dep.pop(pop).metro).region);
        assert!(share1 >= share - 1e-9, "single ingress should haul more: {share1} vs {share}");
    }
}
