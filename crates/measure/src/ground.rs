//! Ground-truth latency oracle.
//!
//! For each peering (ingress), solves "what if the prefix were advertised
//! solely via this peering" once, yielding every UG's route and latency
//! through that ingress individually. This is the quantity the paper's
//! measurement systems approximate; experiments compare the orchestrator's
//! *beliefs* against this oracle.
//!
//! The oracle also resolves arbitrary advertisement sets (for "where does
//! this UG actually land under configuration A"), with a small cache keyed
//! by the advertised peering set.

use crate::ug::{UgId, UserGroup};
use painter_bgp::solve::{solve, RouteTable};
use painter_bgp::PathModel;
use painter_topology::{AsGraph, Deployment, PeeringId};
use std::collections::HashMap;

/// Precomputed per-ingress routes and latencies, plus a config resolver.
pub struct GroundTruth<'a> {
    graph: &'a AsGraph,
    deployment: &'a Deployment,
    ugs: &'a [UserGroup],
    salt: u64,
    /// `per_peering[p][ug]` = RTT through peering `p` alone (incl. last
    /// mile), or `None` if the UG cannot reach that ingress.
    per_peering: Vec<Vec<Option<f64>>>,
    /// Cache of solved tables for advertisement sets.
    table_cache: HashMap<Vec<PeeringId>, RouteTable>,
}

impl<'a> GroundTruth<'a> {
    /// Computes the oracle: one BGP solve per peering.
    ///
    /// Cost is `O(P · E log V)`; for evaluation-scale inputs (thousands of
    /// peerings) run in release mode.
    pub fn compute(
        graph: &'a AsGraph,
        deployment: &'a Deployment,
        ugs: &'a [UserGroup],
        salt: u64,
    ) -> Self {
        let model = PathModel::new(graph, deployment);
        let mut per_peering = Vec::with_capacity(deployment.peerings().len());
        for peering in deployment.peerings() {
            let table = solve(graph, deployment, &[peering.id], salt);
            let mut row = Vec::with_capacity(ugs.len());
            for ug in ugs {
                row.push(
                    model.resolve(&table, ug.asn, ug.metro).map(|r| r.rtt_ms + ug.last_mile_ms),
                );
            }
            per_peering.push(row);
        }
        GroundTruth { graph, deployment, ugs, salt, per_peering, table_cache: HashMap::new() }
    }

    /// The latency a UG would see through `peering` alone, or `None` if
    /// the ingress is not reachable for it (not policy-compliant in the
    /// ground truth).
    pub fn latency(&self, ug: UgId, peering: PeeringId) -> Option<f64> {
        self.per_peering[peering.idx()][ug.idx()]
    }

    /// True if the UG has a route when the prefix is advertised solely via
    /// `peering`.
    pub fn reachable(&self, ug: UgId, peering: PeeringId) -> bool {
        self.latency(ug, peering).is_some()
    }

    /// All peerings reachable by a UG (its ground-truth policy-compliant
    /// ingresses).
    pub fn reachable_peerings(&self, ug: UgId) -> Vec<PeeringId> {
        self.deployment.peerings().iter().map(|p| p.id).filter(|&p| self.reachable(ug, p)).collect()
    }

    /// The minimum latency over all of a UG's reachable ingresses — the
    /// best the cloud could ever give this UG (One-per-Peering achieves
    /// it by construction).
    pub fn best_latency(&self, ug: UgId) -> Option<f64> {
        self.deployment
            .peerings()
            .iter()
            .filter_map(|p| self.latency(ug, p.id))
            .min_by(|a, b| a.partial_cmp(b).expect("latencies are finite"))
    }

    /// Where a UG actually lands — ingress and latency — when a prefix is
    /// advertised via `advertised`. Solves (and caches) the route table
    /// for the set. Returns `None` if the UG has no route.
    pub fn route_under(&mut self, advertised: &[PeeringId], ug: UgId) -> Option<(PeeringId, f64)> {
        let mut key: Vec<PeeringId> = advertised.to_vec();
        key.sort_unstable();
        key.dedup();
        if !self.table_cache.contains_key(&key) {
            let table = solve(self.graph, self.deployment, &key, self.salt);
            // Bound memory: advertisement sets churn during learning.
            if self.table_cache.len() > 256 {
                self.table_cache.clear();
            }
            self.table_cache.insert(key.clone(), table);
        }
        let table = &self.table_cache[&key];
        let u = &self.ugs[ug.idx()];
        let model = PathModel::new(self.graph, self.deployment);
        model.resolve(table, u.asn, u.metro).map(|r| (r.ingress, r.rtt_ms + u.last_mile_ms))
    }

    /// The user groups this oracle was computed over.
    pub fn ugs(&self) -> &[UserGroup] {
        self.ugs
    }

    /// The deployment this oracle was computed over.
    pub fn deployment(&self) -> &Deployment {
        self.deployment
    }

    /// The AS graph this oracle was computed over.
    pub fn graph(&self) -> &AsGraph {
        self.graph
    }

    /// The hidden tie-break salt (shared with any dynamic engine).
    pub fn salt(&self) -> u64 {
        self.salt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ug::build_user_groups;
    use painter_topology::{DeploymentConfig, TopologyConfig};

    struct Fixture {
        net: painter_topology::Internet,
        dep: Deployment,
        ugs: Vec<UserGroup>,
    }

    fn fixture() -> Fixture {
        let net = painter_topology::generate(TopologyConfig::tiny(41));
        let dep = Deployment::generate(&net.graph, &DeploymentConfig::tiny(41));
        let ugs = build_user_groups(&net, 41);
        Fixture { net, dep, ugs }
    }

    #[test]
    fn every_ug_reaches_some_ingress() {
        let f = fixture();
        let gt = GroundTruth::compute(&f.net.graph, &f.dep, &f.ugs, 9);
        for ug in &f.ugs {
            assert!(!gt.reachable_peerings(ug.id).is_empty(), "{} reaches nothing", ug.id);
            assert!(gt.best_latency(ug.id).is_some());
        }
    }

    #[test]
    fn transit_provider_ingresses_reach_everyone() {
        let f = fixture();
        let gt = GroundTruth::compute(&f.net.graph, &f.dep, &f.ugs, 9);
        for &tp in f.dep.transit_providers() {
            for &peering in f.dep.peerings_with(tp) {
                for ug in &f.ugs {
                    assert!(
                        gt.reachable(ug.id, peering),
                        "{} cannot reach transit ingress {peering}",
                        ug.id
                    );
                }
            }
        }
    }

    #[test]
    fn latency_includes_last_mile() {
        let f = fixture();
        let gt = GroundTruth::compute(&f.net.graph, &f.dep, &f.ugs, 9);
        for ug in &f.ugs {
            if let Some(best) = gt.best_latency(ug.id) {
                assert!(best >= ug.last_mile_ms, "{}: {best} < last mile", ug.id);
            }
        }
    }

    #[test]
    fn route_under_full_set_beats_or_matches_no_one() {
        // Under anycast (all peerings), the landed latency must be >= the
        // per-UG best (anycast cannot beat the best single ingress).
        let f = fixture();
        let mut gt = GroundTruth::compute(&f.net.graph, &f.dep, &f.ugs, 9);
        let all: Vec<PeeringId> = f.dep.peerings().iter().map(|p| p.id).collect();
        for ug in &f.ugs {
            let (_, landed) = gt.route_under(&all, ug.id).expect("anycast reaches all");
            let best = gt.best_latency(ug.id).unwrap();
            assert!(landed >= best - 1e-9, "{}: landed {landed} < best {best}", ug.id);
        }
    }

    #[test]
    fn route_under_single_peering_matches_matrix() {
        let f = fixture();
        let mut gt = GroundTruth::compute(&f.net.graph, &f.dep, &f.ugs, 9);
        let p = f.dep.peerings()[0].id;
        for ug in f.ugs.iter().take(20) {
            let via_matrix = gt.latency(ug.id, p);
            let via_resolver = gt.route_under(&[p], ug.id).map(|(_, l)| l);
            assert_eq!(via_matrix.is_some(), via_resolver.is_some());
            if let (Some(a), Some(b)) = (via_matrix, via_resolver) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn anycast_inflation_exists_for_someone() {
        // The premise of the whole paper: for some UGs, anycast lands at a
        // worse ingress than their best. Verify our substrate produces
        // that phenomenon.
        let f = fixture();
        let mut gt = GroundTruth::compute(&f.net.graph, &f.dep, &f.ugs, 9);
        let all: Vec<PeeringId> = f.dep.peerings().iter().map(|p| p.id).collect();
        let inflated = f
            .ugs
            .iter()
            .filter(|ug| {
                let landed = gt.route_under(&all, ug.id).map(|(_, l)| l).unwrap_or(f64::MAX);
                let best = gt.best_latency(ug.id).unwrap_or(f64::MAX);
                landed > best + 5.0
            })
            .count();
        assert!(inflated > 0, "no UG suffers anycast inflation — substrate too benign");
    }
}
