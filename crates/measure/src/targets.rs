//! Geolocation-uncertainty measurement targets (Appendix B).
//!
//! The paper could not advertise from Azure, so it estimated latency
//! *through* an ingress as latency *to* a nearby IP in the
//! peer/provider's space, geolocated to within `GP` km of the PoP. Two
//! consequences, both reproduced here:
//!
//! * **coverage** grows with the allowed uncertainty — only some ingresses
//!   have a well-geolocated target (Fig. 12a);
//! * **estimation error** grows with uncertainty — the target sits up to
//!   `GP` km from the true ingress (Fig. 12b), with occasional large
//!   disagreement from reverse-path inflation.

use crate::ug::UgId;
use painter_eventsim::{derive_seed, SimRng};
use painter_topology::{Deployment, PeeringId};

/// Tunables for target generation.
#[derive(Debug, Clone)]
pub struct TargetDbConfig {
    pub seed: u64,
    /// Fraction of ingresses with no usable target at any uncertainty
    /// (unresponsive addresses, anycast-tainted targets, ...).
    pub frac_no_target: f64,
    /// Fraction of targeted ingresses whose target is a peering-subnet
    /// interface (very precise, < ~50 km).
    pub frac_interface_target: f64,
}

impl Default for TargetDbConfig {
    fn default() -> Self {
        TargetDbConfig { seed: 0, frac_no_target: 0.08, frac_interface_target: 0.35 }
    }
}

/// Per-ingress measurement targets with geolocation uncertainty.
#[derive(Debug, Clone)]
pub struct TargetDb {
    /// `Some(uncertainty_km)` if the ingress has a target.
    uncertainty: Vec<Option<f64>>,
    seed: u64,
}

impl TargetDb {
    /// Generates targets for every peering of a deployment.
    pub fn generate(deployment: &Deployment, config: &TargetDbConfig) -> Self {
        let mut rng = SimRng::stream(config.seed, 0x74_61_72_67);
        let mut uncertainty = Vec::with_capacity(deployment.peerings().len());
        for _ in deployment.peerings() {
            if rng.chance(config.frac_no_target) {
                uncertainty.push(None);
            } else if rng.chance(config.frac_interface_target) {
                // Interface address in the peer's space: tight geolocation.
                uncertainty.push(Some(rng.uniform(5.0, 50.0)));
            } else {
                // Crawled/RDNS/IPMap target: long-tailed uncertainty
                // (calibrated so ~80% of pairs are usable at GP=450 km,
                // the paper's knee).
                uncertainty.push(Some(rng.uniform(30.0, 560.0)));
            }
        }
        TargetDb { uncertainty, seed: config.seed }
    }

    /// The target's geolocation uncertainty for an ingress, if one exists.
    pub fn uncertainty_km(&self, peering: PeeringId) -> Option<f64> {
        self.uncertainty[peering.idx()]
    }

    /// True if the ingress has a target usable at geo-precision `gp_km`.
    pub fn covered(&self, peering: PeeringId, gp_km: f64) -> bool {
        self.uncertainty_km(peering).is_some_and(|u| u <= gp_km)
    }

    /// Number of ingresses covered at `gp_km`.
    pub fn covered_count(&self, gp_km: f64) -> usize {
        self.uncertainty.iter().filter(|u| u.is_some_and(|v| v <= gp_km)).count()
    }

    /// Estimated latency from `ug` through `peering` using the target,
    /// given the true latency. `None` if the ingress has no target.
    ///
    /// The estimation bias is deterministic per `(ug, peering)` — a real
    /// target sits at one fixed wrong spot, it does not move between
    /// measurements. Bias magnitude scales with the target's uncertainty;
    /// a small fraction of pairs get large extra error modeling inflated
    /// reverse paths (Appendix B's "close inspection" cases).
    pub fn estimate(&self, ug: UgId, peering: PeeringId, true_rtt_ms: f64) -> Option<f64> {
        let u_km = self.uncertainty_km(peering)?;
        let stream = derive_seed(self.seed, ((ug.0 as u64) << 32) | peering.0 as u64);
        let mut rng = SimRng::new(stream);
        // Displaced target: up to u_km of extra (or saved) fiber, i.e.
        // ±u_km/100 ms of RTT, centered slightly positive.
        let sigma_ms = u_km / 300.0 + 0.3;
        let mut estimate = true_rtt_ms + rng.normal(0.0, sigma_ms);
        if rng.chance(0.05) {
            // Reverse-path inflation between target and true ingress.
            estimate += rng.uniform(5.0, 30.0);
        }
        Some(estimate.max(0.1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use painter_topology::{DeploymentConfig, TopologyConfig};

    fn db() -> (Deployment, TargetDb) {
        let net = painter_topology::generate(TopologyConfig::tiny(61));
        let dep = Deployment::generate(&net.graph, &DeploymentConfig::tiny(61));
        let db = TargetDb::generate(&dep, &TargetDbConfig::default());
        (dep, db)
    }

    #[test]
    fn coverage_grows_with_uncertainty() {
        let (_, db) = db();
        let c100 = db.covered_count(100.0);
        let c450 = db.covered_count(450.0);
        let c800 = db.covered_count(800.0);
        assert!(c100 <= c450 && c450 <= c800);
        assert!(c800 > c100, "coverage must grow: {c100} -> {c800}");
    }

    #[test]
    fn some_ingresses_have_no_target() {
        let net = painter_topology::generate(TopologyConfig::tiny(62));
        let dep = Deployment::generate(
            &net.graph,
            &DeploymentConfig { num_pops: 12, ..DeploymentConfig::tiny(62) },
        );
        let db = TargetDb::generate(&dep, &TargetDbConfig::default());
        let missing = dep.peerings().iter().filter(|p| db.uncertainty_km(p.id).is_none()).count();
        assert!(missing > 0);
        assert!(missing < dep.peerings().len());
    }

    #[test]
    fn estimate_is_deterministic_per_pair() {
        let (dep, db) = db();
        let p = dep.peerings().iter().find(|p| db.uncertainty_km(p.id).is_some()).unwrap();
        let a = db.estimate(UgId(3), p.id, 50.0).unwrap();
        let b = db.estimate(UgId(3), p.id, 50.0).unwrap();
        assert_eq!(a.to_bits(), b.to_bits());
        let c = db.estimate(UgId(4), p.id, 50.0).unwrap();
        assert_ne!(a.to_bits(), c.to_bits());
    }

    #[test]
    fn tighter_targets_estimate_better() {
        let (dep, db) = db();
        let mut tight_errs = Vec::new();
        let mut loose_errs = Vec::new();
        for p in dep.peerings() {
            let Some(u) = db.uncertainty_km(p.id) else { continue };
            for ug in 0..40u32 {
                let est = db.estimate(UgId(ug), p.id, 60.0).unwrap();
                let err = (est - 60.0).abs();
                if u < 100.0 {
                    tight_errs.push(err);
                } else if u > 400.0 {
                    loose_errs.push(err);
                }
            }
        }
        let median = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        if !tight_errs.is_empty() && !loose_errs.is_empty() {
            assert!(
                median(&mut tight_errs) < median(&mut loose_errs),
                "tight targets should be more accurate"
            );
        }
    }

    #[test]
    fn estimates_stay_positive() {
        let (dep, db) = db();
        for p in dep.peerings() {
            if let Some(e) = db.estimate(UgId(0), p.id, 0.5) {
                assert!(e > 0.0);
            }
        }
    }
}
