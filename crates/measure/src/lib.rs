//! Measurement substrate: user groups, latency ground truth, probes.
//!
//! The paper's orchestrator "assumes we have access to a system that
//! measures latencies from UGs to each policy-compliant ingress
//! individually" (§3.1) — Odin/RIPE Atlas in the Azure setting, direct
//! pings in the PEERING prototype. This crate is that system, simulated:
//!
//! * [`ug`] — user groups: `(AS, metro)` populations with traffic weights
//!   and last-mile delays, derived from the generated Internet's stub ASes.
//! * [`ground`] — the ground-truth oracle: for every `(UG, ingress)` pair,
//!   the latency the UG would see if the prefix were advertised solely via
//!   that ingress (one static BGP solve per peering). This is "the real
//!   Internet" that measurements sample and the orchestrator never sees
//!   directly.
//! * [`ping`] — the measurement primitive: ping a target 7 times, take the
//!   minimum to approximate propagation delay (§5.1.1), with seeded
//!   queueing jitter.
//! * [`probes`] — the vantage-point fleet: the subset of UGs hosting
//!   probes (RIPE Atlas covers only ~47% of Azure traffic volume; same
//!   idea here).
//! * [`targets`] — Appendix B's geolocation-uncertainty model: measurement
//!   targets near ingresses, with coverage and estimation error that both
//!   grow with the allowed uncertainty (Fig. 12).
//! * [`extrapolate`] — Appendix C's simulated measurements: UGs without
//!   probes inherit the *distribution* of relative improvements observed
//!   by nearby probes with similar anycast latency.

pub mod catchment;
pub mod extrapolate;
pub mod ground;
pub mod ping;
pub mod probes;
pub mod targets;
pub mod ug;

pub use catchment::{catchment, pop_catchment_members, Catchment};
pub use extrapolate::extrapolate_improvements;
pub use ground::GroundTruth;
pub use ping::{min_of_pings, Pinger};
pub use probes::ProbeFleet;
pub use targets::{TargetDb, TargetDbConfig};
pub use ug::{build_user_groups, UgId, UserGroup};
