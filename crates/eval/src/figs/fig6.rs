//! Fig. 6: advertisement strategies — benefit vs prefix budget.
//!
//! * 6a: simulated Azure measurements; % of possible benefit (estimated
//!   expectation) per strategy. Paper: PAINTER dominates at every budget
//!   and saves ~3× the prefixes of One-per-Peering at 75% benefit.
//! * 6b: the PEERING prototype; mean latency improvement (ms) over
//!   improved UGs, evaluated against real (ground-truth) advertisements.
//!   Paper: ~54–60 ms at convergence, PAINTER needs ~10% of the prefixes
//!   of One-per-Peering for 90% of the benefit.
//! * 6c: the same metric per learning iteration (1–4) — later iterations
//!   do strictly better and uncertainty shrinks (44 ms → 8 ms).

use crate::helpers::{realized_benefit, world_direct, world_estimated, World};
use crate::scenario::{Scale, Scenario};
use crate::{Figure, Series};
use painter_bgp::AdvertConfig;
use painter_core::{
    one_per_peering, one_per_pop, one_per_pop_with_reuse, ConfigEvaluator, GroundTruthEnv,
    Orchestrator, OrchestratorConfig, OrchestratorReport,
};
use painter_measure::UgId;
use rayon::prelude::*;

/// Budget fractions (percent of ingress count) swept on the x-axis.
pub const BUDGET_FRACTIONS: &[f64] = &[0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0];

/// Restricts a configuration to its first `k` prefixes (the greedy
/// allocates prefixes in order, so this is the budget-`k` configuration).
pub fn restrict_to_budget(config: &AdvertConfig, k: usize) -> AdvertConfig {
    let mut out = AdvertConfig::new();
    for (prefix, peerings) in config.iter() {
        if (prefix.0 as usize) < k {
            for &p in peerings {
                out.add(prefix, p);
            }
        }
    }
    out
}

/// Runs the PAINTER learning loop at the full budget and returns the
/// orchestrator (with its post-learning model/inputs) and the report.
pub fn learn_painter(
    world: &mut World<'_>,
    max_budget: usize,
    iterations: usize,
    d_reuse_km: f64,
) -> (Orchestrator, OrchestratorReport) {
    let mut orch = Orchestrator::new(
        world.inputs.clone(),
        OrchestratorConfig {
            prefix_budget: max_budget,
            d_reuse_km,
            max_iterations: iterations,
            convergence_threshold: f64::NEG_INFINITY, // run all requested iterations
            ..Default::default()
        },
    );
    let ug_ids: Vec<UgId> = orch.inputs.ugs.iter().map(|u| u.id).collect();
    let report = {
        let mut env = GroundTruthEnv::new(&mut world.gt, ug_ids);
        orch.run(&mut env)
    };
    (orch, report)
}

fn scales(scale: Scale) -> (usize, usize) {
    // (max budget cap, learning iterations)
    match scale {
        Scale::Test | Scale::Soak => (24, 2),
        Scale::Paper => (400, 3),
    }
}

/// Fig. 6a: modeled (estimated) % of possible benefit, Azure-like world.
pub fn run_6a(scale: Scale) -> Figure {
    let s = Scenario::azure_like(scale, 61);
    let mut world = world_estimated(&s, 0.47, 450.0);
    let budgets = s.budget_sweep(BUDGET_FRACTIONS);
    let (cap, iters) = scales(scale);
    let max_budget = budgets.last().map(|(_, b)| *b).unwrap_or(1).min(cap);
    let (orch, _) = learn_painter(&mut world, max_budget, iters, 3000.0);
    let eval = ConfigEvaluator::new(&orch.inputs, &orch.model);
    let painter_full = orch.compute_config();

    // Every budget point is a pure evaluation against the learned model,
    // so the sweep fans out over the scoring pool; the ordered collect
    // keeps the series in budget order, identical to the serial loop.
    let pool = painter_core::parallel::build_pool(None);
    let rows: Vec<(f64, f64, f64, f64, f64)> = pool.install(|| {
        budgets
            .par_iter()
            .map(|&(frac, budget)| {
                let painter = restrict_to_budget(&painter_full, budget.min(max_budget));
                let peering = one_per_peering(&s.deployment, Some(&orch.inputs), budget);
                let pop = one_per_pop(&s.deployment, Some(&orch.inputs), budget);
                let reuse =
                    one_per_pop_with_reuse(&s.deployment, Some(&orch.inputs), budget, 3000.0);
                (
                    frac,
                    eval.benefit_percent(&painter).estimated,
                    eval.benefit_percent(&peering).estimated,
                    eval.benefit_percent(&pop).estimated,
                    eval.benefit_percent(&reuse).estimated,
                )
            })
            .collect()
    });
    let painter_pts: Vec<(f64, f64)> = rows.iter().map(|r| (r.0, r.1)).collect();
    let peering_pts: Vec<(f64, f64)> = rows.iter().map(|r| (r.0, r.2)).collect();
    let pop_pts: Vec<(f64, f64)> = rows.iter().map(|r| (r.0, r.3)).collect();
    let reuse_pts: Vec<(f64, f64)> = rows.iter().map(|r| (r.0, r.4)).collect();
    let notes = vec![
        note_dominates(&painter_pts, &peering_pts, "One per Peering"),
        note_dominates(&painter_pts, &pop_pts, "One per PoP"),
        prefix_savings_note(&painter_pts, &peering_pts, 75.0),
    ];
    Figure {
        id: "fig6a",
        title: "Percent of possible benefit vs prefix budget (simulated Azure)",
        x_label: "% prefix budget (of ingress count)",
        y_label: "% of possible benefit (estimated)",
        series: vec![
            Series::new("PAINTER", painter_pts),
            Series::new("One per Peering", peering_pts),
            Series::new("One per PoP", pop_pts),
            Series::new("One per PoP w/Reuse", reuse_pts),
        ],
        notes,
    }
}

/// Fig. 6b: realized mean improvement (ms), PEERING-prototype world.
pub fn run_6b(scale: Scale) -> Figure {
    let s = Scenario::peering_like(scale, 62);
    let mut world = world_direct(&s);
    let budgets = s.budget_sweep(BUDGET_FRACTIONS);
    let (cap, iters) = scales(scale);
    let max_budget = budgets.last().map(|(_, b)| *b).unwrap_or(1).min(cap);
    let (orch, _) = learn_painter(&mut world, max_budget, iters, 3000.0);
    let painter_full = orch.compute_config();

    let mut series: Vec<(&str, Vec<(f64, f64)>)> = vec![
        ("PAINTER", Vec::new()),
        ("One per Peering", Vec::new()),
        ("One per PoP", Vec::new()),
        ("One per PoP w/ reuse", Vec::new()),
    ];
    for &(frac, budget) in &budgets {
        let configs = [
            restrict_to_budget(&painter_full, budget.min(max_budget)),
            one_per_peering(&s.deployment, Some(&orch.inputs), budget),
            one_per_pop(&s.deployment, Some(&orch.inputs), budget),
            one_per_pop_with_reuse(&s.deployment, Some(&orch.inputs), budget, 3000.0),
        ];
        for (slot, config) in series.iter_mut().zip(configs) {
            let r = realized_benefit(&mut world.gt, &world.anycast, &config);
            slot.1.push((frac, r.mean_over_improvable_ms));
        }
    }
    let painter_pts = series[0].1.clone();
    let peering_pts = series[1].1.clone();
    let notes = vec![
        format!(
            "paper: ~54-60 ms mean improvement at convergence; measured {:.0} ms at full budget",
            painter_pts.last().map(|p| p.1).unwrap_or(0.0)
        ),
        note_dominates(&painter_pts, &peering_pts, "One per Peering"),
    ];
    Figure {
        id: "fig6b",
        title: "Mean latency improvement vs prefix budget (PEERING prototype)",
        x_label: "% prefix budget (of ingress count)",
        y_label: "mean improvement over improved UGs (ms)",
        series: series.into_iter().map(|(n, p)| Series::new(n, p)).collect(),
        notes,
    }
}

/// Fig. 6c: per-learning-iteration curves, PEERING-prototype world.
pub fn run_6c(scale: Scale) -> Figure {
    let s = Scenario::peering_like(scale, 63);
    let mut world = world_direct(&s);
    let budgets = s.budget_sweep(BUDGET_FRACTIONS);
    let (cap, _) = scales(scale);
    let max_budget = budgets.last().map(|(_, b)| *b).unwrap_or(1).min(cap);
    let (_, report) = learn_painter(&mut world, max_budget, 4, 3000.0);

    let mut series = Vec::new();
    let mut uncertainties = Vec::new();
    for (i, iter_stats) in report.iterations.iter().enumerate() {
        let mut pts = Vec::new();
        for &(frac, budget) in &budgets {
            let config = restrict_to_budget(&iter_stats.config, budget.min(max_budget));
            let r = realized_benefit(&mut world.gt, &world.anycast, &config);
            pts.push((frac, r.mean_over_improvable_ms));
        }
        // "Uncertainty prior to testing a strategy": how far the model's
        // predicted benefit was from what the advertisement actually
        // delivered, in ms per unit weight. Learning shrinks it — the
        // narrowing shaded band of the paper's figure.
        let weight: f64 = world.inputs.total_weight();
        let model_error =
            (iter_stats.modeled.mean - iter_stats.measured_benefit).abs() / weight.max(1e-9);
        uncertainties.push(model_error);
        series.push(Series::new(format!("Painter Learning Iter {}", i + 1), pts));
    }
    let small_budget_gain = {
        let first = series.first().and_then(|s| s.points.first()).map(|p| p.1).unwrap_or(0.0);
        let last = series.last().and_then(|s| s.points.first()).map(|p| p.1).unwrap_or(0.0);
        (first, last)
    };
    let notes = vec![
        format!(
            "paper: later iterations extract more benefit from small budgets; measured              smallest-budget improvement {:.1} ms (iter 1) -> {:.1} ms (final iter)",
            small_budget_gain.0, small_budget_gain.1
        ),
        format!(
            "paper: uncertainty shrinks over iterations (44 ms -> 8 ms); measured model              error stays within {:.2}-{:.2} ms per unit weight (direct measurements leave              the model little to be wrong about at this scale)",
            uncertainties.iter().copied().fold(f64::INFINITY, f64::min),
            uncertainties.iter().copied().fold(0.0f64, f64::max),
        ),
        format!("iterations run: {}", report.iterations.len()),
    ];
    Figure {
        id: "fig6c",
        title: "Learning iterations improve advertisement strategies",
        x_label: "% prefix budget (of ingress count)",
        y_label: "mean improvement over improved UGs (ms)",
        series,
        notes,
    }
}

fn note_dominates(painter: &[(f64, f64)], other: &[(f64, f64)], name: &str) -> String {
    let wins = painter.iter().zip(other).filter(|((_, a), (_, b))| a + 1e-9 >= *b).count();
    format!(
        "paper: PAINTER >= {name} at every budget; measured {wins}/{} budget points",
        painter.len()
    )
}

/// How many fewer prefixes PAINTER needs than `other` to reach
/// `threshold`% — the paper's "3× fewer prefixes at 75% benefit".
fn prefix_savings_note(painter: &[(f64, f64)], other: &[(f64, f64)], threshold: f64) -> String {
    let first_reaching =
        |pts: &[(f64, f64)]| pts.iter().find(|(_, y)| *y >= threshold).map(|(x, _)| *x);
    match (first_reaching(painter), first_reaching(other)) {
        (Some(p), Some(o)) if p > 0.0 => format!(
            "paper: ~3x prefix savings at {threshold}% benefit; measured {:.1}x ({}% vs {}% budget)",
            o / p,
            p,
            o
        ),
        (Some(p), None) => {
            format!("PAINTER reaches {threshold}% at {p}% budget; One per Peering never does")
        }
        _ => format!("PAINTER did not reach {threshold}% at swept budgets"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use painter_bgp::PrefixId;

    #[test]
    fn fig6a_painter_dominates_baselines() {
        let fig = run_6a(Scale::Test);
        assert_eq!(fig.series.len(), 4);
        let painter = &fig.series[0].points;
        for other in &fig.series[1..] {
            for ((_, a), (_, b)) in painter.iter().zip(&other.points) {
                assert!(a + 5.0 >= *b, "PAINTER {a} << {} {b}", other.name);
            }
        }
        // Benefit grows with budget.
        assert!(painter.last().unwrap().1 >= painter.first().unwrap().1);
        // At the largest budget PAINTER captures most of the benefit.
        assert!(painter.last().unwrap().1 > 50.0, "got {painter:?}");
    }

    #[test]
    fn fig6b_realized_improvement_is_positive() {
        let fig = run_6b(Scale::Test);
        let painter = &fig.series[0].points;
        assert!(painter.last().unwrap().1 > 0.0, "{painter:?}");
    }

    #[test]
    fn fig6c_has_monotonically_helpful_iterations() {
        let fig = run_6c(Scale::Test);
        assert!(!fig.series.is_empty());
        // The final iteration's full-budget point must be at least as good
        // as the first iteration's (learning helps).
        let first = fig.series.first().unwrap().points.last().unwrap().1;
        let last = fig.series.last().unwrap().points.last().unwrap().1;
        assert!(last >= first * 0.9, "learning regressed: {first} -> {last}");
    }

    #[test]
    fn restrict_to_budget_filters_prefixes() {
        let mut c = AdvertConfig::new();
        c.add(PrefixId(0), painter_topology::PeeringId(0));
        c.add(PrefixId(1), painter_topology::PeeringId(1));
        c.add(PrefixId(2), painter_topology::PeeringId(2));
        let r = restrict_to_budget(&c, 2);
        assert_eq!(r.prefix_count(), 2);
        assert!(r.contains(PrefixId(0), painter_topology::PeeringId(0)));
        assert!(!r.contains(PrefixId(2), painter_topology::PeeringId(2)));
    }
}
