//! One module per paper figure.

pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig14;
pub mod fig15;
pub mod fig3;
pub mod fig6;
pub mod fig7;
pub mod fig9;

use crate::scenario::Scale;
use crate::Figure;

/// All figure ids, in paper order.
pub const ALL_FIGURES: &[&str] = &[
    "fig3", "fig6a", "fig6b", "fig6c", "fig7", "fig9a", "fig9b", "fig10", "fig11a", "fig11b",
    "fig12", "fig14", "fig15a", "fig15b",
];

/// Runs one figure harness by id.
pub fn run(id: &str, scale: Scale) -> Option<Figure> {
    Some(match id {
        "fig3" => fig3::run(scale),
        "fig6a" => fig6::run_6a(scale),
        "fig6b" => fig6::run_6b(scale),
        "fig6c" => fig6::run_6c(scale),
        "fig7" => fig7::run(scale),
        "fig9a" => fig9::run_9a(scale),
        "fig9b" => fig9::run_9b(scale),
        "fig10" => fig10::run(scale),
        "fig11a" => fig11::run_11a(scale),
        "fig11b" => fig11::run_11b(scale),
        "fig12" => fig12::run(scale),
        "fig14" => fig14::run(scale),
        "fig15a" => fig15::run_15a(scale),
        "fig15b" => fig15::run_15b(scale),
        _ => return None,
    })
}
