//! Fig. 14 (Appendix E.1): full benefit *ranges* per strategy.
//!
//! Each strategy's benefit is a range — the UG might land on any of the
//! candidate ingresses its chosen prefix exposes. Paper: One-per-PoP
//! strategies have huge ranges (high Upper, low Mean — many possibly-poor
//! ingresses per prefix); One-per-Peering has zero uncertainty; PAINTER's
//! reuse keeps the range narrow while spending few prefixes.

use crate::figs::fig6::{learn_painter, restrict_to_budget, BUDGET_FRACTIONS};
use crate::helpers::world_estimated;
use crate::scenario::{Scale, Scenario};
use crate::{Figure, Series};
use painter_core::{
    one_per_peering, one_per_pop, one_per_pop_with_reuse, BenefitRange, ConfigEvaluator,
};
use rayon::prelude::*;

/// Runs the benefit-range analysis (the simulated-measurement variant,
/// Fig. 14b; the PEERING variant has the same machinery with a different
/// scenario and is covered by fig6b/6c).
pub fn run(scale: Scale) -> Figure {
    let s = Scenario::azure_like(scale, 141);
    let mut world = world_estimated(&s, 0.47, 450.0);
    let budgets = s.budget_sweep(BUDGET_FRACTIONS);
    let cap = if scale == Scale::Test { 24 } else { 300 };
    let max_budget = budgets.last().map(|(_, b)| *b).unwrap_or(1).min(cap);
    let iters = if scale == Scale::Test { 2 } else { 3 };
    let (orch, _) = learn_painter(&mut world, max_budget, iters, 3000.0);
    let eval = ConfigEvaluator::new(&orch.inputs, &orch.model);
    let painter_full = orch.compute_config();

    let mut series: Vec<Series> = Vec::new();
    let mut painter_spread_sum = 0.0;
    let mut pop_spread_sum = 0.0;
    // Pure evaluations; fan each strategy's budget sweep out over the
    // scoring pool (ordered collect keeps budget order).
    let pool = painter_core::parallel::build_pool(None);
    for (name, maker) in strategy_makers() {
        let pts: Vec<(f64, BenefitRange)> = pool.install(|| {
            budgets
                .par_iter()
                .map(|&(frac, budget)| {
                    let config = match name {
                        "PAINTER" => restrict_to_budget(&painter_full, budget.min(max_budget)),
                        _ => maker(&s, &orch.inputs, budget),
                    };
                    (frac, eval.benefit_percent(&config))
                })
                .collect()
        });
        for (bound, pick) in bound_accessors() {
            series.push(Series::new(
                format!("{name}/{bound}"),
                pts.iter().map(|(x, r)| (*x, pick(r))).collect(),
            ));
        }
        let spread: f64 =
            pts.iter().map(|(_, r)| r.upper - r.lower).sum::<f64>() / pts.len().max(1) as f64;
        match name {
            "PAINTER" => painter_spread_sum = spread,
            "One per PoP" => pop_spread_sum = spread,
            _ => {}
        }
    }
    let notes = vec![
        format!(
            "paper: One-per-PoP strategies have very large benefit ranges, PAINTER's are \
             small; measured mean Upper-Lower spread: PAINTER {painter_spread_sum:.1} vs \
             One per PoP {pop_spread_sum:.1} (percentage points)"
        ),
        "One per Peering has zero uncertainty by construction".into(),
    ];
    Figure {
        id: "fig14",
        title: "Benefit ranges (Lower/Mean/Estimated/Upper) per strategy vs budget",
        x_label: "% prefix budget (of ingress count)",
        y_label: "% of possible benefit",
        series,
        notes,
    }
}

type Maker = fn(&Scenario, &painter_core::OrchestratorInputs, usize) -> painter_bgp::AdvertConfig;

/// Accessor into one bound of a [`BenefitRange`].
type BoundAccessor = (&'static str, fn(&BenefitRange) -> f64);

fn strategy_makers() -> Vec<(&'static str, Maker)> {
    vec![
        ("PAINTER", |_, _, _| painter_bgp::AdvertConfig::new()),
        ("One per Peering", |s, i, b| one_per_peering(&s.deployment, Some(i), b)),
        ("One per PoP", |s, i, b| one_per_pop(&s.deployment, Some(i), b)),
        ("One per PoP w/Reuse", |s, i, b| {
            one_per_pop_with_reuse(&s.deployment, Some(i), b, 3000.0)
        }),
    ]
}

fn bound_accessors() -> Vec<BoundAccessor> {
    vec![
        ("Lower", |r| r.lower),
        ("Mean", |r| r.mean),
        ("Estimated", |r| r.estimated),
        ("Upper", |r| r.upper),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig14_ranges_are_ordered_and_peering_is_tight() {
        let fig = run(Scale::Test);
        // For every strategy and budget: lower <= mean <= upper and
        // lower <= estimated <= upper.
        for chunk in fig.series.chunks(4) {
            let (lower, mean, est, upper) =
                (&chunk[0].points, &chunk[1].points, &chunk[2].points, &chunk[3].points);
            for i in 0..lower.len() {
                assert!(lower[i].1 <= mean[i].1 + 1e-6, "{}", chunk[0].name);
                assert!(mean[i].1 <= upper[i].1 + 1e-6, "{}", chunk[1].name);
                assert!(lower[i].1 <= est[i].1 + 1e-6);
                assert!(est[i].1 <= upper[i].1 + 1e-6);
            }
        }
        // One per Peering: zero spread.
        let peering_lower = fig.series.iter().find(|s| s.name == "One per Peering/Lower").unwrap();
        let peering_upper = fig.series.iter().find(|s| s.name == "One per Peering/Upper").unwrap();
        for (l, u) in peering_lower.points.iter().zip(&peering_upper.points) {
            assert!((l.1 - u.1).abs() < 1e-6, "One per Peering must have no uncertainty");
        }
    }

    #[test]
    fn fig14_one_per_pop_has_wide_ranges() {
        let fig = run(Scale::Test);
        let pop_lower = fig.series.iter().find(|s| s.name == "One per PoP/Lower").unwrap();
        let pop_upper = fig.series.iter().find(|s| s.name == "One per PoP/Upper").unwrap();
        let spread: f64 =
            pop_lower.points.iter().zip(&pop_upper.points).map(|(l, u)| u.1 - l.1).sum::<f64>()
                / pop_lower.points.len() as f64;
        assert!(spread > 1.0, "One per PoP spread should be visible, got {spread}");
    }
}
