//! Fig. 15 (Appendix E.2): scaling and the `D_reuse` tradeoff.
//!
//! * 15a: prefixes needed for 90/95/99% of the possible benefit scale
//!   roughly linearly with deployment size (fraction of peers kept).
//! * 15b: growing `D_reuse` costs prefixes (less reuse) but shrinks
//!   benefit uncertainty — the knob trades cost against learning time.

use crate::helpers::{world_direct, World};
use crate::scenario::{Scale, Scenario};
use crate::{Figure, Series};
use painter_core::{ConfigEvaluator, Orchestrator, OrchestratorConfig};
use painter_topology::{DeploymentConfig, TopologyConfig};

/// Prefix counts at which the greedy's modeled benefit first reaches each
/// threshold (fractions of total possible benefit).
fn prefixes_for_thresholds(
    world: &World<'_>,
    d_reuse_km: f64,
    budget_cap: usize,
    thresholds: &[f64],
) -> Vec<Option<usize>> {
    let orch = Orchestrator::new(
        world.inputs.clone(),
        OrchestratorConfig { prefix_budget: budget_cap, d_reuse_km, ..Default::default() },
    );
    let (_, trace) = orch.compute_config_traced();
    let possible = world.inputs.total_possible_benefit().max(1e-9);
    thresholds
        .iter()
        .map(|&th| {
            trace
                .after_each_prefix
                .iter()
                .find(|(_, benefit)| benefit / possible >= th)
                .map(|(count, _)| *count)
        })
        .collect()
}

fn scenario_with_peer_fraction(scale: Scale, seed: u64, fraction: f64) -> Scenario {
    let (mut topo, mut dep): (TopologyConfig, DeploymentConfig) = match scale {
        Scale::Test | Scale::Soak => (
            TopologyConfig {
                seed,
                num_tier1: 5,
                transit_per_region: 3,
                access_per_region: 8,
                num_stubs: 150,
                ..Default::default()
            },
            DeploymentConfig { seed, num_pops: 12, ..Default::default() },
        ),
        Scale::Paper => (
            TopologyConfig { seed, num_stubs: 1200, ..Default::default() },
            DeploymentConfig { seed, num_pops: 36, ..Default::default() },
        ),
    };
    topo.seed = seed;
    // Deployment size scales the PoP footprint (and with it the peering
    // count): a quarter-size deployment is a cloud with a quarter of the
    // sites, which is how a deployment actually grows.
    dep.num_pops = ((dep.num_pops as f64 * fraction).round() as usize).max(2);
    Scenario::build(topo, dep, seed)
}

/// Fig. 15a: required prefixes vs deployment size.
pub fn run_15a(scale: Scale) -> Figure {
    let fractions = [0.25, 0.5, 0.75, 1.0];
    let thresholds = [0.90, 0.95, 0.99];
    let mut per_threshold: Vec<Vec<(f64, f64)>> = vec![Vec::new(); thresholds.len()];
    for &f in &fractions {
        let s = scenario_with_peer_fraction(scale, 151, f);
        let world = world_direct(&s);
        let cap = s.ingress_count();
        let needed = prefixes_for_thresholds(&world, 3000.0, cap, &thresholds);
        for (k, n) in needed.iter().enumerate() {
            if let Some(n) = n {
                per_threshold[k].push((f * 100.0, *n as f64));
            }
        }
    }
    let linearity_note = {
        let pts = &per_threshold[2];
        if pts.len() >= 2 {
            let (x0, y0) = pts[0];
            let (x1, y1) = pts[pts.len() - 1];
            let trend = if y1 > y0 {
                "growing with deployment size as in the paper"
            } else {
                "roughly flat — in our substrate prefix reuse absorbs deployment growth \
                 (benefit concentrates in transit ingresses that far-apart PoPs share), \
                 whereas Azure's measured benefit distribution forced linear growth"
            };
            format!(
                "paper: required prefixes scale linearly with deployment size; measured \
                 99% line goes from {y0:.0} prefixes at {x0:.0}% to {y1:.0} at {x1:.0}% ({trend})"
            )
        } else {
            "insufficient points for linearity check".into()
        }
    };
    Figure {
        id: "fig15a",
        title: "Prefixes required for 90/95/99% benefit vs deployment size",
        x_label: "% of peers in deployment",
        y_label: "required prefixes",
        series: thresholds
            .iter()
            .zip(per_threshold)
            .map(|(th, pts)| Series::new(format!("{:.0} Pct. Benefit", th * 100.0), pts))
            .collect(),
        notes: vec![linearity_note],
    }
}

/// Fig. 15b: the `D_reuse` tradeoff — required prefixes and benefit
/// uncertainty at 99% of upper-bound benefit.
pub fn run_15b(scale: Scale) -> Figure {
    let s = Scenario::peering_like(scale, 152);
    let world = world_direct(&s);
    let cap = s.ingress_count();
    let d_values = [500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0];
    let mut prefixes_pts = Vec::new();
    let mut uncertainty_pts = Vec::new();
    for &d in &d_values {
        let orch = Orchestrator::new(
            world.inputs.clone(),
            OrchestratorConfig { prefix_budget: cap, d_reuse_km: d, ..Default::default() },
        );
        let (config, trace) = orch.compute_config_traced();
        let _possible = world.inputs.total_possible_benefit();
        // Prefixes needed for 99% of what this run ultimately achieves.
        let achieved = trace.after_each_prefix.last().map(|(_, b)| *b).unwrap_or(0.0);
        let needed = trace
            .after_each_prefix
            .iter()
            .find(|(_, b)| *b >= 0.99 * achieved)
            .map(|(c, _)| *c)
            .unwrap_or(config.prefix_count());
        prefixes_pts.push((d, needed as f64));
        // Uncertainty = assumption risk: the benefit at stake if the
        // D_reuse exclusions are wrong. Evaluate the same configuration
        // with the distance filter disabled (every advertised compliant
        // ingress back on the table) and take the gap between the
        // filtered estimate and the unfiltered worst case. Small D_reuse
        // excludes aggressively, so more benefit rides on those
        // assumptions.
        let eval = ConfigEvaluator::new(&orch.inputs, &orch.model);
        let estimated = eval.benefit_percent(&config).estimated;
        let loose_model = painter_core::RoutingModel::new(f64::INFINITY);
        let eval_loose = ConfigEvaluator::new(&orch.inputs, &loose_model);
        let worst_unfiltered = eval_loose.benefit_percent(&config).lower;
        uncertainty_pts.push((d, (estimated - worst_unfiltered).max(0.0)));
    }
    let notes = vec![format!(
        "paper: larger D_reuse needs more prefixes but less uncertainty; measured prefixes \
         {:.0}->{:.0}, uncertainty {:.1}->{:.1} points over D_reuse 500->3000 km",
        prefixes_pts.first().map(|p| p.1).unwrap_or(0.0),
        prefixes_pts.last().map(|p| p.1).unwrap_or(0.0),
        uncertainty_pts.first().map(|p| p.1).unwrap_or(0.0),
        uncertainty_pts.last().map(|p| p.1).unwrap_or(0.0),
    )];
    Figure {
        id: "fig15b",
        title: "D_reuse tradeoff: prefix cost vs benefit uncertainty",
        x_label: "minimum reuse distance (km)",
        y_label: "required prefixes / uncertainty (percentage points)",
        series: vec![
            Series::new("Required Prefixes", prefixes_pts),
            Series::new("Latency Benefit Uncertainty", uncertainty_pts),
        ],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig15a_bigger_deployments_need_more_prefixes() {
        let fig = run_15a(Scale::Test);
        for series in &fig.series {
            assert!(!series.points.is_empty(), "{} empty", series.name);
            // Roughly non-decreasing: at test scale each fraction draws a
            // different peering set, so allow a prefix of noise.
            let first = series.points.first().unwrap().1;
            let last = series.points.last().unwrap().1;
            assert!(last >= first - 1.5, "{}: {first} -> {last}", series.name);
        }
        // 99% needs at least as many prefixes as 90%.
        let p90 = fig.series[0].points.last().unwrap().1;
        let p99 = fig.series[2].points.last().unwrap().1;
        assert!(p99 >= p90);
    }

    #[test]
    fn fig15b_reports_both_series() {
        let fig = run_15b(Scale::Test);
        assert_eq!(fig.series.len(), 2);
        for series in &fig.series {
            assert_eq!(series.points.len(), 6);
            assert!(series.points.iter().all(|(_, y)| y.is_finite() && *y >= 0.0));
        }
    }
}
