//! Fig. 3: traffic sent after DNS record expiration.
//!
//! Paper claim: "Of all traffic sent to Cloud A, 80% is sent at least 5
//! minutes after TTL expiration"; for the other two clouds, ~20% is sent
//! at least a minute after expiration.

use crate::scenario::Scale;
use crate::{Figure, Series};
use painter_dns::{bytes_yet_to_be_sent, generate_trace, CloudProfile, TraceConfig};

/// Offsets (seconds relative to record expiration) sampled for the curve,
/// matching the paper's log-ish x-axis from -1 min to +1 hour.
fn offsets() -> Vec<f64> {
    vec![
        -60.0, -30.0, -10.0, -1.0, 0.0, 1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0,
        3600.0,
    ]
}

/// Runs the Fig. 3 analysis over the three synthetic cloud profiles.
pub fn run(scale: Scale) -> Figure {
    let flows = match scale {
        Scale::Test | Scale::Soak => 20_000,
        Scale::Paper => 200_000,
    };
    let xs = offsets();
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for profile in CloudProfile::paper_triple() {
        let trace = generate_trace(&profile, &TraceConfig { seed: 3, flows });
        let curve = bytes_yet_to_be_sent(&trace, &xs);
        if profile.name == "Cloud A" {
            let at_5min = curve[xs.iter().position(|&x| x == 300.0).expect("offset")];
            notes.push(format!(
                "paper: Cloud A sends 80% of traffic ≥5 min after expiry; measured {:.0}%",
                at_5min * 100.0
            ));
        } else {
            let at_1min = curve[xs.iter().position(|&x| x == 60.0).expect("offset")];
            notes.push(format!(
                "paper: {} sends ~20% ≥1 min after expiry; measured {:.0}%",
                profile.name,
                at_1min * 100.0
            ));
        }
        series.push(Series::new(
            profile.name,
            xs.iter().zip(&curve).map(|(&x, &y)| (x, y * 100.0)).collect(),
        ));
    }
    Figure {
        id: "fig3",
        title: "Bytes yet to be sent vs time relative to DNS record expiration",
        x_label: "seconds after record expiration",
        y_label: "% of bytes yet to be sent",
        series,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_shape_matches_paper() {
        let fig = run(Scale::Test);
        assert_eq!(fig.series.len(), 3);
        // Cloud A dominates the others at +60 s.
        let at = |s: &Series, x: f64| {
            s.points.iter().find(|(px, _)| *px == x).map(|(_, y)| *y).expect("point")
        };
        let a = &fig.series[0];
        let b = &fig.series[1];
        let c = &fig.series[2];
        assert!(at(a, 60.0) > at(b, 60.0));
        assert!(at(b, 60.0) > at(c, 60.0));
        // Cloud A still has most bytes outstanding 5 minutes after expiry.
        assert!(at(a, 300.0) > 50.0, "got {}", at(a, 300.0));
        // Every curve decreases.
        for s in &fig.series {
            for w in s.points.windows(2) {
                assert!(w[0].1 >= w[1].1 - 1e-9);
            }
        }
    }
}
