//! Fig. 7: advertisement benefits persist over a month.
//!
//! Paper: a configuration solved from one week of measurements keeps
//! ~95–97% of its benefit for at least 30 days when UGs may switch
//! prefixes dynamically, and about 10 points less when each UG is frozen
//! to its day-0 prefix choice — evidence that PAINTER's value partly lies
//! in the *backup* paths its advertisements keep available.

use crate::figs::fig6::{learn_painter, restrict_to_budget};
use crate::helpers::world_direct;
use crate::scenario::{Scale, Scenario};
use crate::{Figure, Series};
use painter_eventsim::{derive_seed, SimRng};
use painter_measure::UgId;
use painter_topology::PeeringId;
use std::collections::HashMap;

/// Daily latency drift: a small multiplicative wobble plus occasional
/// routing events that add tens of ms for the day. Deterministic per
/// `(ug, ingress, day)`.
fn drifted(base_ms: f64, ug: UgId, ingress: PeeringId, day: u32, seed: u64) -> f64 {
    let stream = derive_seed(
        seed,
        0x00F1_0607 ^ ((ug.0 as u64) << 40) ^ ((ingress.0 as u64) << 16) ^ day as u64,
    );
    let mut rng = SimRng::new(stream);
    let wobble = rng.log_normal(1.0, 0.05);
    let event = if rng.chance(0.01) { rng.uniform(20.0, 80.0) } else { 0.0 };
    base_ms * wobble + event
}

/// Runs the 30-day retention experiment.
pub fn run(scale: Scale) -> Figure {
    let s = Scenario::peering_like(scale, 71);
    let mut world = world_direct(&s);
    let n_ingresses = s.ingress_count() as f64;
    // The paper's representative budgets: ~0.0% (1 prefix), 0.2%, 2.1%.
    let budgets: Vec<(String, usize)> = [(0.0, 1usize), (0.2, 0), (2.1, 0)]
        .iter()
        .map(|&(frac, fixed)| {
            let b = if fixed > 0 {
                fixed
            } else {
                ((n_ingresses * frac / 100.0).round() as usize).max(2)
            };
            (format!("{frac:.1}% Budget"), b)
        })
        .collect();
    let max_budget = budgets.iter().map(|(_, b)| *b).max().unwrap_or(1);
    let iters = if scale == Scale::Test { 2 } else { 3 };
    let (orch, _) = learn_painter(&mut world, max_budget, iters, 3000.0);
    let full = orch.compute_config();

    let days: u32 = 30;
    let mut series = Vec::new();
    let mut notes = Vec::new();
    for (label, budget) in &budgets {
        let config = restrict_to_budget(&full, *budget);
        // Day-0 landed (ingress, latency) per (ug, prefix).
        let mut landed: HashMap<(UgId, u16), (PeeringId, f64)> = HashMap::new();
        let prefix_sets: Vec<(u16, Vec<PeeringId>)> =
            config.iter().map(|(p, set)| (p.0, set.to_vec())).collect();
        for ug in world.gt.ugs().to_vec() {
            for (p, set) in &prefix_sets {
                if let Some(hit) = world.gt.route_under(set, ug.id) {
                    landed.insert((ug.id, *p), hit);
                }
            }
        }
        // Anycast landed ingress per UG (for drifting the default too).
        let all: Vec<PeeringId> = s.deployment.peerings().iter().map(|p| p.id).collect();
        let anycast_landed: HashMap<UgId, (PeeringId, f64)> = world
            .gt
            .ugs()
            .to_vec()
            .iter()
            .filter_map(|u| world.gt.route_under(&all, u.id).map(|hit| (u.id, hit)))
            .collect();

        // Day-0 static choice: best prefix per UG.
        let mut static_choice: HashMap<UgId, u16> = HashMap::new();
        for ug in world.gt.ugs() {
            let best = prefix_sets
                .iter()
                .filter_map(|(p, _)| landed.get(&(ug.id, *p)).map(|(_, l)| (*p, *l)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            if let Some((p, _)) = best {
                static_choice.insert(ug.id, p);
            }
        }

        let mut dynamic_pts = Vec::new();
        let mut static_pts = Vec::new();
        let mut day0_benefit = 0.0;
        for day in 0..=days {
            let mut dyn_total = 0.0;
            let mut stat_total = 0.0;
            for ug in world.gt.ugs() {
                let Some(&(any_ing, any_base)) = anycast_landed.get(&ug.id) else { continue };
                let any_today = drifted(any_base, ug.id, any_ing, day, s.seed);
                // Dynamic: best prefix today.
                let best_today = prefix_sets
                    .iter()
                    .filter_map(|(p, _)| {
                        landed
                            .get(&(ug.id, *p))
                            .map(|(ing, base)| drifted(*base, ug.id, *ing, day, s.seed))
                    })
                    .fold(f64::INFINITY, f64::min);
                dyn_total += ug.weight * (any_today - best_today).max(0.0);
                // Static: day-0 choice, whatever it costs today.
                if let Some(p) = static_choice.get(&ug.id) {
                    if let Some((ing, base)) = landed.get(&(ug.id, *p)) {
                        let today = drifted(*base, ug.id, *ing, day, s.seed);
                        stat_total += ug.weight * (any_today - today).max(0.0);
                    }
                }
            }
            if day == 0 {
                day0_benefit = dyn_total.max(1e-9);
            }
            dynamic_pts.push((day as f64, 100.0 * (1.0 - dyn_total / day0_benefit)));
            static_pts.push((day as f64, 100.0 * (1.0 - stat_total / day0_benefit)));
        }
        let dyn_drop = dynamic_pts.last().map(|p| p.1).unwrap_or(0.0);
        let stat_drop = static_pts.last().map(|p| p.1).unwrap_or(0.0);
        notes.push(format!(
            "{label}: day-30 benefit drop {dyn_drop:.1}% dynamic vs {stat_drop:.1}% static \
             (paper: <=3% dynamic, ~10 points worse static)"
        ));
        series.push(Series::new(format!("{label} (Dynamic Prefix Choices)"), dynamic_pts));
        series.push(Series::new(format!("{label} (Static Prefix Choices)"), static_pts));
    }
    Figure {
        id: "fig7",
        title: "Benefit retention over 30 days, dynamic vs static prefix choice",
        x_label: "days since initial solution",
        y_label: "% benefit decrease",
        series,
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_series_come_in_budget_pairs_and_are_deterministic() {
        let a = run(Scale::Test);
        let b = run(Scale::Test);
        // 3 budgets x (dynamic, static).
        assert_eq!(a.series.len(), 6);
        for (sa, sb) in a.series.iter().zip(&b.series) {
            assert_eq!(sa.name, sb.name);
            for (pa, pb) in sa.points.iter().zip(&sb.points) {
                assert_eq!(pa.1.to_bits(), pb.1.to_bits());
            }
        }
        // 31 daily samples (day 0..=30) per series.
        assert!(a.series.iter().all(|s| s.points.len() == 31));
    }

    #[test]
    fn fig7_dynamic_beats_static_and_decay_is_small() {
        let fig = run(Scale::Test);
        // Pairs of (dynamic, static) series.
        for pair in fig.series.chunks(2) {
            let dynamic = &pair[0];
            let static_ = &pair[1];
            let d30 = dynamic.points.last().unwrap().1;
            let s30 = static_.points.last().unwrap().1;
            assert!(d30 <= s30 + 1e-9, "dynamic should lose no more than static");
            // Dynamic decay stays modest.
            assert!(d30 < 30.0, "dynamic drop too large: {d30}");
            // Day 0 has no drop by construction.
            assert!(dynamic.points[0].1.abs() < 1e-6);
        }
    }
}
