//! Fig. 10: RTT-timescale failover during a PoP failure.
//!
//! The scenario of Fig. 10a: an enterprise TM-Edge holds tunnels to an
//! anycast prefix (advertised at two PoPs) and four single-transit
//! prefixes (one per ISP per PoP). At t = 60 s every session at PoP-A is
//! withdrawn. The paper observes:
//!
//! * PAINTER detects the loss within ~1.3 RTT and switches to the
//!   next-best prefix at PoP-B in about one RTT (~30 ms of loss);
//! * the anycast prefix is unreachable for ~1 s and takes ~15 s to fully
//!   reconverge (visible as a RIPE RIS update spike);
//! * DNS-based failover would take ~60 s (TTL-bound).
//!
//! The BGP side runs on the event-driven engine; its per-prefix
//! reachability/latency is sampled onto the Traffic Manager simulation's
//! channel schedule.

use crate::scenario::{Scale, SALT};
use crate::{Figure, Series};
use painter_bgp::dynamics::{BgpEngine, DynamicsConfig};
use painter_bgp::PrefixId;
use painter_eventsim::SimTime;
use painter_geo::{metro, Region};
use painter_tm::{TmSimulation, TmSimulationConfig, TunnelId};
use painter_topology::{AsGraph, AsTier, Deployment, PeeringId, PeeringKind, PopId, Relationship};

/// Wall-clock length of the experiment (the paper plots 0–130 s).
const HORIZON_S: f64 = 130.0;
/// PoP-A fails at this time.
const FAIL_AT_S: f64 = 60.0;
/// Sampling grid for coupling BGP state into the TM channels.
const SAMPLE_MS: f64 = 25.0;
/// Extra RTT on the anycast path: anycast terminates on the shared
/// front-end VIP (an extra indirection the dedicated tunnel addresses
/// skip), which is also why the paper's prototype finds the unicast
/// prefix "lower latency than the default anycast path".
const ANYCAST_OVERHEAD_MS: f64 = 4.0;

struct Fig10World {
    graph: AsGraph,
    deployment: Deployment,
    stub: painter_topology::AsId,
    stub_metro: painter_geo::MetroId,
}

/// Two PoPs (New York = PoP-A, London = PoP-B), two transit ISPs present
/// at both, and an enterprise stub in New York reaching them through two
/// regional access ISPs. The regional tier matters: replacement routes
/// after the withdrawal must be *announced* down the chain (MRAI-gated),
/// which is what stretches anycast reconvergence to many seconds in the
/// paper's RIS data. A handful of bystander networks multiplies the
/// update churn the collectors see.
fn build_world() -> Fig10World {
    let ny = painter_geo::metro::all_metro_ids()
        .find(|&m| metro(m).name == "New York")
        .expect("metro db");
    let lon =
        painter_geo::metro::all_metro_ids().find(|&m| metro(m).name == "London").expect("metro db");
    let mut graph = AsGraph::new();
    let isp1 = graph.add_node(AsTier::Tier1, Region::NorthAmerica, vec![ny, lon], 1.05);
    let isp2 = graph.add_node(AsTier::Tier1, Region::Europe, vec![ny, lon], 1.15);
    let acc1 = graph.add_node(AsTier::Access, Region::NorthAmerica, vec![ny], 1.0);
    let acc2 = graph.add_node(AsTier::Access, Region::NorthAmerica, vec![ny], 1.1);
    let stub = graph.add_node(AsTier::Stub, Region::NorthAmerica, vec![ny], 1.0);
    graph.add_link(isp1, isp2, Relationship::PeerWith).expect("new link");
    graph.add_link(isp1, acc1, Relationship::ProviderOf).expect("new link");
    graph.add_link(isp2, acc1, Relationship::ProviderOf).expect("new link");
    graph.add_link(isp1, acc2, Relationship::ProviderOf).expect("new link");
    graph.add_link(isp2, acc2, Relationship::ProviderOf).expect("new link");
    graph.add_link(acc1, stub, Relationship::ProviderOf).expect("new link");
    graph.add_link(acc2, stub, Relationship::ProviderOf).expect("new link");
    // Bystander customer networks that also receive updates (churn).
    for i in 0..8 {
        let bystander = graph.add_node(AsTier::Stub, Region::NorthAmerica, vec![ny], 1.0);
        let upstream = if i % 2 == 0 { acc1 } else { acc2 };
        graph.add_link(upstream, bystander, Relationship::ProviderOf).expect("new link");
    }
    let deployment = Deployment::from_parts(
        vec![ny, lon],
        vec![
            (0, isp1, PeeringKind::TransitProvider), // peering 0: PoP-A/ISP1
            (0, isp2, PeeringKind::TransitProvider), // peering 1: PoP-A/ISP2
            (1, isp1, PeeringKind::TransitProvider), // peering 2: PoP-B/ISP1
            (1, isp2, PeeringKind::TransitProvider), // peering 3: PoP-B/ISP2
        ],
    );
    Fig10World { graph, deployment, stub, stub_metro: ny }
}

/// The five prefixes: anycast via everything, then one per peering.
fn prefix_plan() -> Vec<(PrefixId, Vec<PeeringId>)> {
    vec![
        (PrefixId(0), vec![PeeringId(0), PeeringId(1), PeeringId(2), PeeringId(3)]),
        (PrefixId(1), vec![PeeringId(0)]),
        (PrefixId(2), vec![PeeringId(1)]),
        (PrefixId(3), vec![PeeringId(2)]),
        (PrefixId(4), vec![PeeringId(3)]),
    ]
}

/// Runs the failover experiment.
pub fn run(_scale: Scale) -> Figure {
    let world = build_world();
    let plan = prefix_plan();

    // --- BGP side: announce everything at t=0, withdraw PoP-A at 60 s.
    // Busy edge routers: hundreds of ms of per-message processing, the
    // dominant term in real-world withdrawal propagation.
    let dynamics = DynamicsConfig { proc_delay_ms: (30.0, 400.0), mrai_secs: (2.0, 8.0), seed: 10 };
    let mut engine = BgpEngine::new(&world.graph, &world.deployment, dynamics, SALT);
    for (prefix, peerings) in &plan {
        for &pe in peerings {
            engine.announce(SimTime::ZERO, *prefix, pe);
        }
    }
    // A PoP failure is not one atomic event: each BGP session notices on
    // its own failure-detection timer, so the withdrawals reach neighbors
    // staggered over a few seconds — this is what smears the RIS update
    // spike in the paper's figure.
    let fail_at = SimTime::from_secs(FAIL_AT_S);
    let mut stagger = 0u32;
    for (prefix, peerings) in &plan {
        for &pe in peerings {
            if world.deployment.peering(pe).pop == PopId(0) {
                let detect = SimTime::from_ms(700.0 * (stagger % 4) as f64);
                engine.withdraw(fail_at + detect, *prefix, pe);
                stagger += 1;
            }
        }
    }

    // --- Sample BGP state onto the TM channel schedule.
    let mut tm = TmSimulation::new(TmSimulationConfig { seed: 10, ..Default::default() });
    let mut tunnels: Vec<(PrefixId, TunnelId)> = Vec::new();
    // Seed tunnels with their initial RTTs once the engine settles.
    engine.run_until(SimTime::from_secs(30.0));
    for (prefix, peerings) in &plan {
        let overhead = if prefix.0 == 0 { ANYCAST_OVERHEAD_MS } else { 0.0 };
        let rtt = engine
            .current_rtt_ms(world.stub, world.stub_metro, *prefix)
            .map(|r| r + overhead)
            .unwrap_or(100.0);
        let pop = world.deployment.peering(peerings[0]).pop;
        let id = tm.add_path(*prefix, pop, rtt);
        tunnels.push((*prefix, id));
    }
    // BGP-state samples become TM path-change events, and the per-prefix
    // RTT series of the figure.
    let mut rtt_series: Vec<(PrefixId, Vec<(f64, f64)>)> =
        plan.iter().map(|(p, _)| (*p, Vec::new())).collect();
    let mut anycast_down_window: (Option<f64>, Option<f64>) = (None, None);
    let steps = (HORIZON_S * 1000.0 / SAMPLE_MS) as usize;
    for step in 0..=steps {
        let t = SimTime::from_ms(step as f64 * SAMPLE_MS);
        engine.run_until(t);
        for ((prefix, tunnel), (_, series)) in tunnels.iter().zip(rtt_series.iter_mut()) {
            let overhead = if prefix.0 == 0 { ANYCAST_OVERHEAD_MS } else { 0.0 };
            // Data plane: once PoP-A is down, any path whose ingress is
            // PoP-A blackholes immediately, even while its BGP session is
            // still waiting for failure detection to withdraw it.
            let state = engine
                .current_path(world.stub, *prefix)
                .filter(|(_, ingress)| {
                    !(t >= fail_at && world.deployment.peering(*ingress).pop == PopId(0))
                })
                .and_then(|_| engine.current_rtt_ms(world.stub, world.stub_metro, *prefix))
                .map(|r| r + overhead);
            match state {
                Some(rtt) => {
                    tm.schedule_path_rtt(t, *tunnel, rtt);
                    series.push((t.as_secs(), rtt));
                    if *prefix == PrefixId(0)
                        && anycast_down_window.0.is_some()
                        && anycast_down_window.1.is_none()
                    {
                        anycast_down_window.1 = Some(t.as_secs());
                    }
                }
                None => {
                    tm.schedule_path_down(t, *tunnel);
                    if *prefix == PrefixId(0) && t >= fail_at && anycast_down_window.0.is_none() {
                        anycast_down_window.0 = Some(t.as_secs());
                    }
                }
            }
        }
    }

    // --- Run the Traffic Manager over the programmed paths.
    tm.run(SimTime::from_secs(HORIZON_S));

    // PAINTER's observed per-packet latency and chosen prefix.
    let mut painter_rtt: Vec<(f64, f64)> = Vec::new();
    let mut chosen: Vec<(f64, f64)> = Vec::new();
    for r in tm.records() {
        if let (Some(prefix), Some(rtt)) = (r.prefix, r.rtt_ms()) {
            painter_rtt.push((r.sent.as_secs(), rtt));
            chosen.push((r.sent.as_secs(), prefix.0 as f64));
        }
    }
    // Failover gap: last completed packet before failure on a PoP-A
    // prefix -> first completed packet after failure on a PoP-B prefix.
    let pop_b_prefixes = [PrefixId(3), PrefixId(4)];
    let first_backup = tm
        .records()
        .iter()
        .find(|r| {
            r.sent >= fail_at
                && r.completed.is_some()
                && r.prefix.map(|p| pop_b_prefixes.contains(&p)).unwrap_or(false)
        })
        .map(|r| (r.sent - fail_at).as_ms());
    let lost_packets =
        tm.records().iter().filter(|r| r.sent >= fail_at && r.completed.is_none()).count();

    // BGP churn (anycast prefix) per second.
    let churn: Vec<(f64, f64)> = (0..(HORIZON_S as usize))
        .map(|sec| {
            let from = SimTime::from_secs(sec as f64);
            let to = SimTime::from_secs(sec as f64 + 1.0);
            (sec as f64, engine.updates_in_window(PrefixId(0), from, to) as f64)
        })
        .collect();
    // Reconvergence window at 100 ms resolution (the per-second series
    // above is the plotted one).
    let mut converged_at = FAIL_AT_S;
    for tick in 0..((HORIZON_S - FAIL_AT_S) * 10.0) as usize {
        let from = SimTime::from_secs(FAIL_AT_S + tick as f64 * 0.1);
        let to = from + SimTime::from_ms(100.0);
        if engine.updates_in_window(PrefixId(0), from, to) > 0 {
            converged_at = FAIL_AT_S + (tick + 1) as f64 * 0.1;
        }
    }

    let mut series = Vec::new();
    for (prefix, pts) in rtt_series {
        series.push(Series::new(format!("rtt/{}", prefix_label(prefix)), pts));
    }
    series.push(Series::new("painter/observed-rtt", painter_rtt));
    series.push(Series::new("painter/chosen-prefix", chosen));
    series.push(Series::new("bgp/anycast-updates-per-s", churn));

    let notes = vec![
        match first_backup {
            Some(ms) => format!(
                "paper: PAINTER switches to PoP-B in ~1 RTT (~30 ms); measured first \
                 completed packet on backup {ms:.0} ms after failure ({lost_packets} packets lost)"
            ),
            None => "failover did not complete — unexpected".into(),
        },
        match anycast_down_window {
            (Some(a), Some(b)) => {
                format!("paper: anycast unreachable ~1 s after withdrawal; measured {:.2} s", b - a)
            }
            _ => "anycast never lost reachability at sampling granularity".into(),
        },
        format!(
            "paper: ~15 s to converge (RIS update spike); measured churn window {:.1} s — \
             our 15-AS scenario converges faster than the real Internet, but the ordering \
             (TM ms << BGP s << DNS min) is preserved",
            converged_at - FAIL_AT_S
        ),
        "DNS failover bound: one TTL (60 s in the paper's figure), orders of magnitude slower"
            .into(),
    ];
    Figure {
        id: "fig10",
        title: "Failover during PoP failure: PAINTER vs BGP vs DNS timescales",
        x_label: "time (s)",
        y_label: "RTT (ms) / updates per s / chosen prefix id",
        series,
        notes,
    }
}

fn prefix_label(p: PrefixId) -> &'static str {
    match p.0 {
        0 => "anycast(1.1.1.0/24)",
        1 => "PoPA-ISP1(2.2.2.0/24)",
        2 => "PoPA-ISP2",
        3 => "PoPB-ISP1(3.3.3.0/24)",
        4 => "PoPB-ISP2",
        _ => "?",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig10_failover_is_rtt_timescale() {
        let fig = run(Scale::Test);
        // The chosen-prefix series must start on a PoP-A prefix (1 or 2 —
        // low RTT from New York) and end on a PoP-B prefix (3 or 4).
        let chosen = fig.series.iter().find(|s| s.name == "painter/chosen-prefix").expect("series");
        let first = chosen.points.first().unwrap().1;
        let last = chosen.points.last().unwrap().1;
        assert!(first == 1.0 || first == 2.0, "started on {first}");
        assert!(last == 3.0 || last == 4.0, "ended on {last}");
        // Failover note reports a sub-second gap.
        let note = &fig.notes[0];
        assert!(note.contains("measured"), "{note}");
        // Observed RTT before failure is transatlantic-free (< 20 ms).
        let rtts = fig.series.iter().find(|s| s.name == "painter/observed-rtt").expect("series");
        let early: Vec<f64> =
            rtts.points.iter().filter(|(t, _)| *t > 30.0 && *t < 59.0).map(|(_, r)| *r).collect();
        let late: Vec<f64> =
            rtts.points.iter().filter(|(t, _)| *t > 70.0).map(|(_, r)| *r).collect();
        assert!(!early.is_empty() && !late.is_empty());
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&early) < 20.0, "pre-failure RTT {}", mean(&early));
        assert!(mean(&late) > 40.0, "post-failure RTT {} (London path)", mean(&late));
    }

    #[test]
    fn fig10_bgp_churn_spikes_after_failure() {
        let fig = run(Scale::Test);
        let churn =
            fig.series.iter().find(|s| s.name == "bgp/anycast-updates-per-s").expect("series");
        let before: f64 =
            churn.points.iter().filter(|(t, _)| *t > 40.0 && *t < 60.0).map(|(_, c)| c).sum();
        let after: f64 =
            churn.points.iter().filter(|(t, _)| *t >= 60.0 && *t < 80.0).map(|(_, c)| c).sum();
        assert!(after > before, "withdrawal must cause churn: {before} -> {after}");
    }
}
