//! Fig. 9: granularity of traffic control, and what coarse control costs.
//!
//! * 9a: the granularity at which BGP (per peering × user AS), DNS (per
//!   recursive resolver), and PAINTER (per flow) steer the traffic
//!   arriving at each PoP.
//! * 9b: PAINTER's advertisement benefit when steering per flow vs when
//!   steering via DNS (each resolver mapped to its best single prefix).
//!   Paper: DNS sacrifices roughly half the benefit.

use crate::figs::fig6::{learn_painter, restrict_to_budget, BUDGET_FRACTIONS};
use crate::helpers::{all_peerings, anycast_pop_volumes, world_direct};
use crate::scenario::{Scale, Scenario};
use crate::{Figure, Series};
use painter_dns::{assign_resolvers, ResolverPopulationConfig};
use painter_measure::UgId;
use painter_topology::{PeeringId, PopId};
use std::collections::HashMap;

/// Granularity buckets: fraction-of-PoP-traffic thresholds, matching the
/// paper's legend (≤0.01%, 0.01–0.1%, 0.1–1%, 1–10%, 10–100%).
const BUCKETS: [f64; 4] = [0.0001, 0.001, 0.01, 0.1];

fn bucket_of(fraction: f64) -> usize {
    BUCKETS.iter().position(|&b| fraction <= b).unwrap_or(BUCKETS.len())
}

/// Computes, for one PoP's unit volumes (one entry per control unit), the
/// share of PoP traffic in each granularity bucket.
fn bucket_shares(unit_volumes: &[f64]) -> [f64; 5] {
    let total: f64 = unit_volumes.iter().sum();
    let mut shares = [0.0; 5];
    if total <= 0.0 {
        return shares;
    }
    for &v in unit_volumes {
        shares[bucket_of(v / total)] += v / total;
    }
    shares
}

/// Fig. 9a: control granularity per PoP for BGP, DNS, and PAINTER.
pub fn run_9a(scale: Scale) -> Figure {
    let s = Scenario::azure_like(scale, 91);
    let mut world = world_direct(&s);
    let all = all_peerings(&s);
    // Where each UG's anycast traffic lands.
    let mut landings: Vec<(UgId, PeeringId, PopId, f64)> = Vec::new();
    for ug in &s.ugs {
        if let Some((ingress, _)) = world.gt.route_under(&all, ug.id) {
            landings.push((ug.id, ingress, s.deployment.peering(ingress).pop, ug.weight));
        }
    }
    // Realistic resolver demographics: resolvers are numerous (several
    // per metro, many public instances), so each steers a small slice of
    // any PoP's traffic — whereas BGP's (peering, user AS) units aggregate
    // a whole access ISP's customer base behind one announcement.
    let resolver_pop = assign_resolvers(
        &s.ugs.iter().map(|u| u.metro).collect::<Vec<_>>(),
        &ResolverPopulationConfig {
            seed: s.seed,
            public_fraction: 0.12,
            public_resolvers: 12,
            ecs_resolvers: 1,
            locals_per_metro: 4,
        },
    );

    // Rank PoPs by volume; analyze All + top 9.
    let volumes = anycast_pop_volumes(&s, &mut world.gt);
    let mut ranked: Vec<(PopId, f64)> = volumes.iter().map(|(k, v)| (*k, *v)).collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
    let mut scopes: Vec<(String, Option<PopId>)> = vec![("All".into(), None)];
    for (pop, _) in ranked.iter().take(9) {
        scopes.push((format!("PoP{}", pop.0), Some(*pop)));
    }

    let mut series = Vec::new();
    let mut dns_fine_all = 0.0;
    let mut bgp_fine_all = 0.0;
    for (label, scope) in &scopes {
        let in_scope = |pop: PopId| scope.is_none_or(|p| p == pop);
        // BGP units: (peering, user AS).
        let mut bgp_units: HashMap<(PeeringId, u32), f64> = HashMap::new();
        // DNS units: resolver.
        let mut dns_units: HashMap<u32, f64> = HashMap::new();
        // PAINTER units: flows (weight split into per-flow slivers).
        let mut painter_units: Vec<f64> = Vec::new();
        for &(ug, ingress, pop, weight) in &landings {
            if !in_scope(pop) {
                continue;
            }
            // BGP sees provider-aggregated address space: an enterprise
            // usually numbers out of its access ISP's covering prefix, so
            // the "(peering, user AS)" unit BGP can steer is the *access
            // ISP*, not the enterprise itself.
            let asn = s
                .net
                .graph
                .providers(s.ugs[ug.idx()].asn)
                .first()
                .map(|n| n.peer.0)
                .unwrap_or(s.ugs[ug.idx()].asn.0);
            *bgp_units.entry((ingress, asn)).or_insert(0.0) += weight;
            let resolver = resolver_pop.assignment[ug.idx()];
            *dns_units.entry(resolver.0).or_insert(0.0) += weight;
            // ~100 flows per weight unit: each flow is a steerable unit.
            let flows = (weight * 100.0).ceil().max(1.0);
            for _ in 0..(flows as usize).min(400) {
                painter_units.push(weight / flows);
            }
        }
        let bgp = bucket_shares(&bgp_units.values().copied().collect::<Vec<_>>());
        let dns = bucket_shares(&dns_units.values().copied().collect::<Vec<_>>());
        let painter = bucket_shares(&painter_units);
        if label == "All" {
            dns_fine_all = dns[..3].iter().sum::<f64>();
            bgp_fine_all = bgp[..3].iter().sum::<f64>();
        }
        for (method, shares) in [("BGP", bgp), ("DNS", dns), ("PAINTER", painter)] {
            series.push(Series::new(
                format!("{label}/{method}"),
                shares.iter().enumerate().map(|(i, &v)| (i as f64, v * 100.0)).collect(),
            ));
        }
    }
    let notes = vec![
        format!(
            "paper: DNS controls traffic far more finely than BGP; measured fine-grained \
             (<1% units) share: DNS {:.0}%, BGP {:.0}%",
            dns_fine_all * 100.0,
            bgp_fine_all * 100.0
        ),
        "PAINTER controls individual flows: all volume in the finest bucket".into(),
    ];
    Figure {
        id: "fig9a",
        title: "Traffic-control granularity per PoP (BGP vs DNS vs PAINTER)",
        x_label: "granularity bucket (0: <=0.01% .. 4: 10-100% of PoP traffic)",
        y_label: "% of PoP traffic volume",
        series,
        notes,
    }
}

/// Fig. 9b: benefit with per-flow steering vs DNS steering.
pub fn run_9b(scale: Scale) -> Figure {
    let s = Scenario::azure_like(scale, 92);
    let mut world = world_direct(&s);
    let budgets = s.budget_sweep(BUDGET_FRACTIONS);
    let cap = if scale == Scale::Test { 24 } else { 300 };
    let max_budget = budgets.last().map(|(_, b)| *b).unwrap_or(1).min(cap);
    let iters = if scale == Scale::Test { 2 } else { 3 };
    let (orch, _) = learn_painter(&mut world, max_budget, iters, 3000.0);
    let full = orch.compute_config();
    let resolver_pop = assign_resolvers(
        &s.ugs.iter().map(|u| u.metro).collect::<Vec<_>>(),
        &ResolverPopulationConfig { seed: s.seed, ..Default::default() },
    );

    // Total possible (ground truth).
    let mut possible = 0.0;
    for (i, ug) in s.ugs.iter().enumerate() {
        if let Some(any) = world.anycast[i] {
            let best = world.gt.best_latency(ug.id).unwrap_or(any);
            possible += ug.weight * (any - best).max(0.0);
        }
    }

    let mut painter_pts = Vec::new();
    let mut dns_pts = Vec::new();
    for &(frac, budget) in &budgets {
        let config = restrict_to_budget(&full, budget.min(max_budget));
        // Landed latency per (ug, prefix).
        let prefix_sets: Vec<Vec<PeeringId>> = config.iter().map(|(_, set)| set.to_vec()).collect();
        let mut landed: Vec<Vec<Option<f64>>> = vec![Vec::new(); s.ugs.len()];
        for ug in &s.ugs {
            landed[ug.id.idx()] = prefix_sets
                .iter()
                .map(|set| world.gt.route_under(set, ug.id).map(|(_, l)| l))
                .collect();
        }
        // Per-flow steering: each UG takes its best prefix.
        let mut fine = 0.0;
        for (i, ug) in s.ugs.iter().enumerate() {
            let Some(any) = world.anycast[i] else { continue };
            let best = landed[i].iter().flatten().fold(f64::INFINITY, |a, &b| a.min(b));
            fine += ug.weight * (any - best).max(0.0);
        }
        // DNS steering: each resolver maps all its UGs to the single
        // prefix with the best aggregate benefit (ECS resolvers steer
        // per UG).
        let mut dns = 0.0;
        for (rid, members) in resolver_pop.members().iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let ecs = resolver_pop.supports_ecs(painter_dns::ResolverId(rid as u32));
            if ecs {
                for &m in members {
                    let Some(any) = world.anycast[m] else { continue };
                    let best = landed[m].iter().flatten().fold(f64::INFINITY, |a, &b| a.min(b));
                    dns += s.ugs[m].weight * (any - best).max(0.0);
                }
                continue;
            }
            // One prefix for the whole resolver (anycast = None option).
            let mut best_agg = 0.0f64; // staying on anycast
            for prefix_idx in 0..prefix_sets.len() {
                let mut agg = 0.0;
                for &m in members {
                    let Some(any) = world.anycast[m] else { continue };
                    if let Some(lat) = landed[m].get(prefix_idx).copied().flatten() {
                        agg += s.ugs[m].weight * (any - lat); // may be negative
                    }
                }
                best_agg = best_agg.max(agg);
            }
            dns += best_agg;
        }
        painter_pts.push((frac, 100.0 * fine / possible.max(1e-9)));
        dns_pts.push((frac, 100.0 * dns / possible.max(1e-9)));
    }
    let ratio = match (painter_pts.last(), dns_pts.last()) {
        (Some((_, p)), Some((_, d))) if *p > 0.0 => d / p,
        _ => 0.0,
    };
    Figure {
        id: "fig9b",
        title: "Benefit with fine-grained steering vs DNS steering",
        x_label: "% prefix budget (of ingress count)",
        y_label: "% of possible benefit",
        series: vec![Series::new("PAINTER", painter_pts), Series::new("PAINTER w/ DNS", dns_pts)],
        notes: vec![format!(
            "paper: DNS steering sacrifices roughly half the benefit; measured DNS/PAINTER \
             ratio {:.2} at full budget",
            ratio
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9a_painter_is_finest() {
        let fig = run_9a(Scale::Test);
        let all_painter = fig.series.iter().find(|s| s.name == "All/PAINTER").expect("series");
        // Everything in the finest buckets (0..=1).
        let fine: f64 = all_painter.points.iter().filter(|(x, _)| *x <= 1.0).map(|(_, y)| y).sum();
        assert!(fine > 95.0, "got {fine}");
        // BGP has weight in coarse buckets.
        let all_bgp = fig.series.iter().find(|s| s.name == "All/BGP").expect("series");
        let coarse: f64 = all_bgp.points.iter().filter(|(x, _)| *x >= 3.0).map(|(_, y)| y).sum();
        assert!(coarse > 10.0, "BGP should be coarse, got {coarse}");
    }

    #[test]
    fn fig9a_bucket_shares_sum_to_one() {
        let shares = bucket_shares(&[0.5, 0.3, 0.1, 0.05, 0.05]);
        let total: f64 = shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fig9b_dns_loses_benefit() {
        let fig = run_9b(Scale::Test);
        let painter = &fig.series[0].points;
        let dns = &fig.series[1].points;
        // At every budget point DNS is no better than per-flow steering.
        for ((_, p), (_, d)) in painter.iter().zip(dns) {
            assert!(*d <= p + 1e-6, "DNS {d} beat PAINTER {p}");
        }
        // And at the largest budget it loses a visible chunk.
        let (p, d) = (painter.last().unwrap().1, dns.last().unwrap().1);
        assert!(d < p, "DNS should cost something: {d} vs {p}");
    }
}
