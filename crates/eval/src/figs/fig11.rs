//! Fig. 11: PAINTER exposes more paths and PoPs than SD-WAN multihoming.
//!
//! * 11a: CDFs of (PAINTER − SD-WAN) exposed paths (lower bound = one per
//!   reachable peering at nearby PoPs; upper bound = all policy-compliant
//!   first-hop × peering combinations) and exposed PoPs. Paper: ≥23 more
//!   paths for most UGs, ≥40 more for 25%, ~4 more PoPs for 10%.
//! * 11b: CDF of the fraction of default-path ASes each solution can
//!   avoid. Paper: PAINTER avoids *all* default-path ASes for 90.7% of
//!   UGs vs 69.5% for SD-WAN.

use crate::helpers::{all_peerings, region_pop_coverage, world_direct};
use crate::scenario::{Scale, Scenario, SALT};
use crate::{Figure, Series};
use painter_bgp::solve::{solve, RouteTable};
use painter_geo::metro;
use painter_topology::{AsId, PeeringId, PopId};
use std::collections::{HashMap, HashSet};

/// Builds a CDF series from raw values.
fn cdf(mut values: Vec<f64>) -> Vec<(f64, f64)> {
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = values.len().max(1) as f64;
    values.into_iter().enumerate().map(|(i, v)| (v, (i + 1) as f64 / n)).collect()
}

struct PathCounts {
    sdwan_paths: f64,
    sdwan_pops: f64,
    painter_lower: f64,
    painter_upper: f64,
    painter_pops: f64,
}

fn count_paths(s: &Scenario) -> (Vec<PathCounts>, HashMap<PopId, usize>) {
    let mut world = world_direct(s);
    let all = all_peerings(s);
    let anycast_table = solve(&s.net.graph, &s.deployment, &all, SALT);
    let region_pops = region_pop_coverage(s, &mut world.gt, 0.9);

    // Cache single-peering tables for reachability of provider ASes.
    let mut table_cache: HashMap<PeeringId, RouteTable> = HashMap::new();

    let mut out = Vec::new();
    let mut pop_usage: HashMap<PopId, usize> = HashMap::new();
    for ug in &s.ugs {
        let providers: Vec<AsId> = s.net.graph.providers(ug.asn).iter().map(|n| n.peer).collect();
        // --- SD-WAN: one path per ISP, plus a direct peering if any.
        let direct = !s.deployment.peerings_with(ug.asn).is_empty();
        let sdwan_paths = providers.len() + usize::from(direct);
        // PoPs those ISP paths reach: where each provider lands under
        // anycast (destination-based routing).
        let mut sdwan_pops: HashSet<PopId> = HashSet::new();
        for &q in &providers {
            if let Some(r) =
                painter_bgp::resolve_route(&s.net.graph, &s.deployment, &anycast_table, q, ug.metro)
            {
                sdwan_pops.insert(s.deployment.peering(r.ingress).pop);
            }
        }
        if direct {
            for &pe in s.deployment.peerings_with(ug.asn) {
                sdwan_pops.insert(s.deployment.peering(pe).pop);
            }
        }

        // --- PAINTER: peerings at the PoPs serving 90% of the UG's
        // region's traffic, restricted to ground-truth-reachable ones.
        let region = metro(ug.metro).region;
        let candidate_pops: HashSet<PopId> =
            region_pops.get(&region).map(|v| v.iter().copied().collect()).unwrap_or_default();
        let reachable: Vec<PeeringId> = world
            .gt
            .reachable_peerings(ug.id)
            .into_iter()
            .filter(|&pe| candidate_pops.contains(&s.deployment.peering(pe).pop))
            .collect();
        let painter_lower = reachable.len();
        // Upper bound: distinct (first-hop ISP, peering) combinations —
        // advertisement attributes (e.g. prepending) could expose each.
        let mut upper = 0usize;
        for &pe in &reachable {
            let table = table_cache
                .entry(pe)
                .or_insert_with(|| solve(&s.net.graph, &s.deployment, &[pe], SALT));
            let mut first_hops = 0usize;
            for &q in &providers {
                if table.has_route(q) {
                    first_hops += 1;
                }
            }
            if s.deployment.peering(pe).neighbor == ug.asn {
                first_hops += 1; // the direct session itself
            }
            upper += first_hops.max(1);
        }
        let painter_pops: HashSet<PopId> =
            reachable.iter().map(|&pe| s.deployment.peering(pe).pop).collect();
        for &p in &painter_pops {
            *pop_usage.entry(p).or_insert(0) += 1;
        }
        out.push(PathCounts {
            sdwan_paths: sdwan_paths as f64,
            sdwan_pops: sdwan_pops.len() as f64,
            painter_lower: painter_lower as f64,
            painter_upper: upper as f64,
            painter_pops: painter_pops.len() as f64,
        });
    }
    (out, pop_usage)
}

/// Fig. 11a: exposed paths/PoPs, PAINTER minus SD-WAN.
pub fn run_11a(scale: Scale) -> Figure {
    let s = Scenario::peering_like(scale, 111);
    let (counts, _) = count_paths(&s);
    let lower: Vec<f64> = counts.iter().map(|c| c.painter_lower - c.sdwan_paths).collect();
    let upper: Vec<f64> = counts.iter().map(|c| c.painter_upper - c.sdwan_paths).collect();
    let pops: Vec<f64> = counts.iter().map(|c| c.painter_pops - c.sdwan_pops).collect();

    let median = |v: &[f64]| {
        let mut v = v.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[v.len() / 2]
    };
    let notes = vec![
        format!(
            "paper: PAINTER exposes >=23 more paths than SD-WAN for most UGs; measured \
             median lower-bound difference {:.0}",
            median(&lower)
        ),
        format!(
            "paper: more PoPs for a tail of UGs; measured median PoP difference {:.0}",
            median(&pops)
        ),
    ];
    Figure {
        id: "fig11a",
        title: "Exposed paths and PoPs: PAINTER minus SD-WAN (CDFs)",
        x_label: "difference (PAINTER - SD-WAN)",
        y_label: "CDF",
        series: vec![
            Series::new("Best Policy-Compliant Paths", cdf(lower)),
            Series::new("All Policy-Compliant Paths", cdf(upper)),
            Series::new("PoPs", cdf(pops)),
        ],
        notes,
    }
}

/// Fig. 11b: fraction of default-path ASes avoidable.
pub fn run_11b(scale: Scale) -> Figure {
    let s = Scenario::peering_like(scale, 112);
    let world = world_direct(&s);
    let all = all_peerings(&s);
    let anycast_table = solve(&s.net.graph, &s.deployment, &all, SALT);
    let mut table_cache: HashMap<PeeringId, RouteTable> = HashMap::new();

    let mut painter_fracs = Vec::new();
    let mut sdwan_fracs = Vec::new();
    for ug in &s.ugs {
        let Some(default_path) = anycast_table.as_path(ug.asn) else { continue };
        // Intermediate ASes of the default path (exclude the UG itself).
        let default_set: HashSet<AsId> =
            default_path.iter().copied().filter(|a| *a != ug.asn).collect();
        if default_set.is_empty() {
            continue;
        }
        let avoided_fraction = |alt: &[AsId]| -> f64 {
            let alt_set: HashSet<AsId> = alt.iter().copied().collect();
            let avoided = default_set.iter().filter(|a| !alt_set.contains(a)).count();
            avoided as f64 / default_set.len() as f64
        };
        // PAINTER: best over every policy-compliant path — each reachable
        // ingress combined with each of the UG's first-hop ISPs that can
        // carry traffic toward it (the paper counts policy-compliant
        // paths from traceroutes, not just the currently BGP-selected
        // one; advertisement attributes can shift the first hop).
        let mut best_painter: f64 = 0.0;
        for pe in world.gt.reachable_peerings(ug.id) {
            let table = table_cache
                .entry(pe)
                .or_insert_with(|| solve(&s.net.graph, &s.deployment, &[pe], SALT));
            if let Some(path) = table.as_path(ug.asn) {
                best_painter = best_painter.max(avoided_fraction(&path));
            }
            for q in s.net.graph.providers(ug.asn) {
                if let Some(mut path) = table.as_path(q.peer) {
                    path.insert(0, ug.asn);
                    best_painter = best_painter.max(avoided_fraction(&path));
                }
            }
        }
        painter_fracs.push(best_painter);
        // SD-WAN: best over forced-first-hop paths (tunnel through each
        // ISP, then that ISP's anycast route).
        let mut best_sdwan: f64 = 0.0;
        for q in s.net.graph.providers(ug.asn) {
            if let Some(mut path) = anycast_table.as_path(q.peer) {
                path.insert(0, ug.asn);
                best_sdwan = best_sdwan.max(avoided_fraction(&path));
            }
        }
        if !s.deployment.peerings_with(ug.asn).is_empty() {
            best_sdwan = 1.0; // a direct session avoids every intermediate AS
        }
        sdwan_fracs.push(best_sdwan);
    }

    let all_avoid = |v: &[f64]| {
        100.0 * v.iter().filter(|f| **f >= 1.0 - 1e-9).count() as f64 / v.len().max(1) as f64
    };
    let notes = vec![format!(
        "paper: all default-path ASes avoidable for 90.7% (PAINTER) vs 69.5% (SD-WAN) of \
         UGs; measured {:.1}% vs {:.1}%",
        all_avoid(&painter_fracs),
        all_avoid(&sdwan_fracs)
    )];
    Figure {
        id: "fig11b",
        title: "Fraction of default-path ASes avoidable (CDF)",
        x_label: "fraction of ASes in default path avoided",
        y_label: "CDF over UGs",
        series: vec![
            Series::new("PAINTER", cdf(painter_fracs)),
            Series::new("SD-WAN", cdf(sdwan_fracs)),
        ],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig11a_painter_exposes_more_paths() {
        let fig = run_11a(Scale::Test);
        let lower = fig.series.iter().find(|s| s.name == "Best Policy-Compliant Paths").unwrap();
        // Median difference is positive (PAINTER exposes more).
        let median = lower.points[lower.points.len() / 2].0;
        assert!(median > 0.0, "median difference {median}");
        // Upper bound dominates lower bound at the median.
        let upper = fig.series.iter().find(|s| s.name == "All Policy-Compliant Paths").unwrap();
        let upper_median = upper.points[upper.points.len() / 2].0;
        assert!(upper_median >= median);
    }

    #[test]
    fn fig11b_painter_avoids_more() {
        let fig = run_11b(Scale::Test);
        let note = &fig.notes[0];
        // Extract the two measured numbers from the note.
        let nums: Vec<f64> = note
            .split(&['d', ';'][..])
            .next_back()
            .unwrap_or("")
            .split('%')
            .filter_map(|t| t.trim().trim_start_matches("vs").trim().parse::<f64>().ok())
            .collect();
        assert_eq!(nums.len(), 2, "note format: {note}");
        assert!(
            nums[0] >= nums[1],
            "PAINTER ({}) should avoid at least as often as SD-WAN ({})",
            nums[0],
            nums[1]
        );
        assert!(nums[0] > 50.0, "PAINTER avoidance too low: {}", nums[0]);
    }

    #[test]
    fn cdf_is_monotone() {
        let c = cdf(vec![3.0, 1.0, 2.0]);
        assert_eq!(c.len(), 3);
        for w in c.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
        assert!((c.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
