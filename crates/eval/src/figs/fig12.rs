//! Fig. 12 (Appendix B): measurement-target coverage and accuracy vs
//! geolocation uncertainty.
//!
//! Paper: coverage of policy-compliant `(UG, ingress)` volume grows with
//! allowed uncertainty (knee around 400 km, 80.6% at 450 km), while the
//! median absolute latency-estimation error also grows (within ~2 ms at
//! 450 km) — 450 km is the chosen tradeoff.

use crate::helpers::{all_peerings, world_direct};
use crate::scenario::{Scale, Scenario};
use crate::{Figure, Series};
use painter_geo::{metro, min_rtt_ms};
use painter_measure::{ProbeFleet, TargetDb, TargetDbConfig};

/// Runs the coverage/accuracy analysis.
pub fn run(scale: Scale) -> Figure {
    let s = Scenario::azure_like(scale, 121);
    let mut world = world_direct(&s);
    let targets =
        TargetDb::generate(&s.deployment, &TargetDbConfig { seed: s.seed, ..Default::default() });
    let fleet = ProbeFleet::select(&s.ugs, 0.47, s.seed);
    let all = all_peerings(&s);
    let anycast: Vec<Option<f64>> =
        s.ugs.iter().map(|u| world.gt.route_under(&all, u.id).map(|(_, l)| l)).collect();

    // --- Coverage vs GP (weighted (UG, ingress) pairs), excluding pairs
    // unlikely to provide benefit: anycast latency already below the
    // speed-of-light bound to the ingress's PoP.
    let gps: Vec<f64> = (1..=7).map(|k| k as f64 * 100.0).collect();
    let mut all_pts = Vec::new();
    let mut probe_pts = Vec::new();
    for &gp in &gps {
        let mut covered_all = 0.0;
        let mut total_all = 0.0;
        let mut covered_probe = 0.0;
        let mut total_probe = 0.0;
        for (i, ug) in s.ugs.iter().enumerate() {
            let Some(any) = anycast[i] else { continue };
            let reachable = world.gt.reachable_peerings(ug.id);
            let eligible: Vec<_> = reachable
                .into_iter()
                .filter(|&pe| {
                    // Keep pairs where the ingress could plausibly help.
                    let pop_point = metro(s.deployment.peering_metro(pe)).point();
                    let bound = min_rtt_ms(&metro(ug.metro).point(), &pop_point);
                    any > bound
                })
                .collect();
            if eligible.is_empty() {
                continue;
            }
            let per_pair = ug.weight / eligible.len() as f64;
            for pe in eligible {
                total_all += per_pair;
                let cov = targets.covered(pe, gp);
                if cov {
                    covered_all += per_pair;
                }
                if fleet.has_probe(ug.id) {
                    total_probe += per_pair;
                    if cov {
                        covered_probe += per_pair;
                    }
                }
            }
        }
        all_pts.push((gp, 100.0 * covered_all / total_all.max(1e-9)));
        probe_pts.push((gp, 100.0 * covered_probe / total_probe.max(1e-9)));
    }

    // --- Accuracy: median |estimate - truth| bucketed by target
    // uncertainty.
    let mut buckets: Vec<Vec<f64>> = vec![Vec::new(); gps.len()];
    for ug in &s.ugs {
        for pe in world.gt.reachable_peerings(ug.id) {
            let Some(u_km) = targets.uncertainty_km(pe) else { continue };
            let Some(truth) = world.gt.latency(ug.id, pe) else { continue };
            let Some(est) = targets.estimate(ug.id, pe, truth) else { continue };
            let bucket = ((u_km / 100.0).floor() as usize).min(gps.len() - 1);
            buckets[bucket].push((est - truth).abs());
        }
    }
    let mut accuracy_pts = Vec::new();
    for (k, mut errs) in buckets.into_iter().enumerate() {
        if errs.is_empty() {
            continue;
        }
        errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        accuracy_pts.push((gps[k], errs[errs.len() / 2]));
    }

    let at_450 = all_pts
        .iter()
        .find(|(gp, _)| (*gp - 400.0).abs() < 1.0 || (*gp - 500.0).abs() < 1.0)
        .map(|(_, c)| *c)
        .unwrap_or(0.0);
    let err_mid = accuracy_pts.iter().find(|(gp, _)| *gp >= 400.0).map(|(_, e)| *e).unwrap_or(0.0);
    let notes = vec![
        format!("paper: 80.6% of volume covered at GP=450 km; measured ~{at_450:.0}% near that GP"),
        format!("paper: median estimate error within ~2 ms at 450 km; measured {err_mid:.1} ms"),
    ];
    Figure {
        id: "fig12",
        title: "Target coverage and latency-estimate accuracy vs geolocation uncertainty",
        x_label: "geolocation uncertainty (km)",
        y_label: "coverage (%) / median abs error (ms)",
        series: vec![
            Series::new("coverage/All UGs", all_pts),
            Series::new("coverage/Restricted to Probes", probe_pts),
            Series::new("accuracy/median-abs-error-ms", accuracy_pts),
        ],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig12_probe_coverage_tracks_overall_coverage() {
        let fig = run(Scale::Test);
        let all = &fig.series[0].points;
        let probes = &fig.series[1].points;
        assert_eq!(all.len(), probes.len());
        // The paper found the two curves similar (probes sit in
        // high-volume UGs); they must at least stay within 25 points.
        for ((_, a), (_, p)) in all.iter().zip(probes) {
            assert!((a - p).abs() < 25.0, "all {a} vs probes {p}");
        }
    }

    #[test]
    fn fig12_coverage_grows_and_error_grows() {
        let fig = run(Scale::Test);
        let coverage = &fig.series[0].points;
        assert!(coverage.len() >= 5);
        assert!(
            coverage.last().unwrap().1 > coverage.first().unwrap().1,
            "coverage must grow with allowed uncertainty: {coverage:?}"
        );
        assert!(coverage.last().unwrap().1 > 50.0);
        let accuracy = &fig.series[2].points;
        assert!(accuracy.len() >= 2);
        assert!(
            accuracy.last().unwrap().1 >= accuracy.first().unwrap().1 * 0.8,
            "error should trend upward: {accuracy:?}"
        );
    }
}
