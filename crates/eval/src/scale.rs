//! Million-UG scale sweep (`figures scale`, `scale.*` sections,
//! `BENCH_scale.json`).
//!
//! The paper's deployments are small (tens of PoPs), but the
//! orchestrator's data structures claim to scale to cloud-provider UG
//! populations. This harness substantiates that claim: it sweeps a grid
//! of UG counts × peering counts × thread counts over a synthetic world
//! built from the [`TopologyConfig::scale`] generator, and on every cell
//!
//! 1. runs a cold full computation through the SoA benefit arena,
//! 2. applies a deterministic delta stream (RTT shifts, demand shifts,
//!    peering adds/removes) through [`Orchestrator::apply_delta`],
//! 3. recomputes incrementally, and
//! 4. recomputes from scratch on the mutated inputs — and **fails** the
//!    run unless the incremental [`AdvertConfig`] and `GreedyTrace` are
//!    identical to the scratch ones, and identical across every swept
//!    thread count.
//!
//! Output is split by determinism: everything in the `scale.*` report
//! sections is a pure function of the config (CI byte-compares two
//! same-seed runs), while wall-clock timings go only into the
//! [`BenchTrajectory`] (`BENCH_scale.json`), whose *shape* — not its
//! values — is pinned by tests.

use crate::scenario::Scale;
use painter_bgp::AdvertConfig;
use painter_core::{
    Delta, MeasurementDelta, Orchestrator, OrchestratorConfig, OrchestratorInputs, TopologyDelta,
    UgView,
};
use painter_geo::{metro, one_way_ms, GeoPoint, MetroId, WORLD_METROS};
use painter_measure::{build_user_groups, UgId, UserGroup};
use painter_obs::{BenchCell, BenchTrajectory, Fnv1a, Section};
use painter_topology::{generate, PeeringId, TopologyConfig};
use std::time::Instant;

/// Knobs for one [`run_scale`] sweep.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Master seed: stub population, candidate wiring, and the delta
    /// stream all derive from it.
    pub seed: u64,
    /// UG populations to sweep (ascending).
    pub ug_counts: Vec<usize>,
    /// Peering counts to sweep.
    pub peering_counts: Vec<usize>,
    /// Thread counts to sweep; the computed configuration must be
    /// identical at every one.
    pub thread_counts: Vec<usize>,
    /// PoPs the synthetic peerings round-robin over (placed at the
    /// heaviest world metros).
    pub pops: usize,
    /// Greedy prefix budget per cell.
    pub prefix_budget: usize,
    /// `min_marginal_benefit` as a fraction of the cell's total possible
    /// benefit — an absolute threshold would not transfer across UG
    /// populations spanning two orders of magnitude.
    pub min_marginal_frac: f64,
    /// Deltas applied between the cold and the incremental computation.
    pub deltas: usize,
    /// Candidacies a synthetic `AddPeering` delta carries.
    pub add_candidates: usize,
}

impl ScaleConfig {
    /// Scale-appropriate defaults. Test keeps the sweep CI-sized but
    /// still reaches a 10^5-UG cell (run in release); Paper stretches to
    /// 10^6 UGs and thousands of peerings.
    ///
    /// A cell's cost is roughly `committed pairs x total candidacies`
    /// (the lazy greedy rescores the whole frontier per commit), so the
    /// presets bound the pair count through the budget and the marginal
    /// threshold: Test commits a couple dozen pairs per cell, keeping a
    /// 10^5-UG cell at seconds on one CPU.
    pub fn for_scale(scale: Scale, seed: u64) -> ScaleConfig {
        let (ug_counts, peering_counts, thread_counts) = match scale {
            Scale::Test | Scale::Soak => (vec![10_000, 100_000], vec![16, 48], vec![1, 2]),
            Scale::Paper => (vec![100_000, 1_000_000], vec![1_024, 4_096], vec![1, 4, 8]),
        };
        let (prefix_budget, min_marginal_frac) = match scale {
            Scale::Test | Scale::Soak => (4, 2e-2),
            Scale::Paper => (8, 1e-2),
        };
        ScaleConfig {
            seed,
            ug_counts,
            peering_counts,
            thread_counts,
            pops: 24,
            prefix_budget,
            min_marginal_frac,
            deltas: 32,
            add_candidates: 16,
        }
    }
}

/// One swept cell: deterministic facts only (timings live in
/// [`ScaleRun::bench`]).
#[derive(Debug, Clone)]
pub struct CellOutcome {
    pub n_ugs: usize,
    pub n_peerings: usize,
    pub threads: usize,
    /// Total (UG, peering) candidacies in the cell's inputs.
    pub candidacies: usize,
    /// Cold full computation: prefixes used, pairs, config digest.
    pub cold_prefixes: usize,
    pub cold_pairs: usize,
    pub cold_fnv: u64,
    /// Post-delta incremental computation (scratch-verified).
    pub incr_prefixes: usize,
    pub incr_pairs: usize,
    pub incr_fnv: u64,
    /// Modeled benefit of the post-delta configuration.
    pub incr_benefit: f64,
    /// Deltas applied between the two computations.
    pub deltas: usize,
    /// Incremental == from-scratch on the mutated inputs (a `false`
    /// never reaches a report: [`run_scale`] errors instead).
    pub matches_scratch: bool,
    /// Wall-clock timings, exported via [`ScaleRun::bench`] only.
    build_ms: f64,
    full_ms: f64,
    apply_ms: f64,
    incr_ms: f64,
    scratch_ms: f64,
}

impl CellOutcome {
    /// The `<ug>x<peer>x<thr>` label shared by the report section and the
    /// bench cell.
    pub fn label(&self) -> String {
        format!("{}x{}x{}", self.n_ugs, self.n_peerings, self.threads)
    }

    /// The `scale.cell.<ug>x<peer>x<thr>` report section.
    pub fn section(&self) -> Section {
        Section::new(format!("scale.cell.{}", self.label()))
            .field("ugs", self.n_ugs)
            .field("peerings", self.n_peerings)
            .field("threads", self.threads)
            .field("candidacies", self.candidacies)
            .field("cold_prefixes", self.cold_prefixes)
            .field("cold_pairs", self.cold_pairs)
            .field("cold_fnv", self.cold_fnv)
            .field("incr_prefixes", self.incr_prefixes)
            .field("incr_pairs", self.incr_pairs)
            .field("incr_fnv", self.incr_fnv)
            .field("incr_benefit", self.incr_benefit)
            .field("deltas", self.deltas)
            .field("matches_scratch", self.matches_scratch)
    }

    /// The cell's wall-clock measurements as a bench cell.
    fn bench_cell(&self) -> BenchCell {
        BenchCell::new(self.label())
            .field("build_ms", self.build_ms)
            .field("full_ms", self.full_ms)
            .field("apply_ms", self.apply_ms)
            .field("incr_ms", self.incr_ms)
            .field("scratch_ms", self.scratch_ms)
            .field("speedup", self.scratch_ms / self.incr_ms)
    }
}

/// One finished scale sweep.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    pub scale: Scale,
    pub config: ScaleConfig,
    pub cells: Vec<CellOutcome>,
}

impl ScaleRun {
    /// The run as `scale.*` sections: config first, then one per cell in
    /// sweep order. Everything here is a pure function of the config.
    pub fn sections(&self) -> Vec<Section> {
        let join = |xs: &[usize]| xs.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(",");
        let mut out = vec![Section::new("scale.config")
            .field("seed", self.config.seed)
            .field("ug_counts", join(&self.config.ug_counts))
            .field("peering_counts", join(&self.config.peering_counts))
            .field("thread_counts", join(&self.config.thread_counts))
            .field("pops", self.config.pops)
            .field("prefix_budget", self.config.prefix_budget)
            .field("min_marginal_frac", self.config.min_marginal_frac)
            .field("deltas", self.config.deltas)
            .field("add_candidates", self.config.add_candidates)];
        out.extend(self.cells.iter().map(CellOutcome::section));
        out
    }

    /// The run's wall-clock measurements as a `BENCH_scale.json`
    /// trajectory (one bench cell per swept cell, in sweep order).
    pub fn bench(&self) -> BenchTrajectory {
        let mut t = BenchTrajectory::new("scale");
        for cell in &self.cells {
            t.push_cell(cell.bench_cell());
        }
        t
    }
}

/// Runs the full sweep; errors if any cell's incremental result diverges
/// from its from-scratch recompute, or if any two thread counts disagree.
pub fn run_scale(scale: Scale, config: ScaleConfig) -> Result<ScaleRun, String> {
    if config.thread_counts.is_empty() || config.pops == 0 {
        return Err("scale sweep needs at least one thread count and one pop".to_string());
    }
    let mut cells = Vec::new();
    for &n_ugs in &config.ug_counts {
        let world = generate(TopologyConfig::scale(config.seed, n_ugs));
        let ugs = build_user_groups(&world, config.seed);
        for &n_peerings in &config.peering_counts {
            let t0 = Instant::now();
            let inputs = synthesize_inputs(&config, &ugs, n_peerings);
            let build_ms = ms_since(t0);
            let deltas = delta_stream(&config, n_ugs, n_peerings);
            let mut first_of_sweep: Option<(u64, u64)> = None;
            for &threads in &config.thread_counts {
                let cell =
                    run_cell(&config, &inputs, &deltas, n_ugs, n_peerings, threads, build_ms)?;
                if !cell.matches_scratch {
                    return Err(format!(
                        "cell {}: incremental result diverged from scratch recompute",
                        cell.label()
                    ));
                }
                match first_of_sweep {
                    None => first_of_sweep = Some((cell.cold_fnv, cell.incr_fnv)),
                    Some(expect) if expect != (cell.cold_fnv, cell.incr_fnv) => {
                        return Err(format!(
                            "cell {}: configuration differs across thread counts",
                            cell.label()
                        ));
                    }
                    Some(_) => {}
                }
                cells.push(cell);
            }
        }
    }
    Ok(ScaleRun { scale, config, cells })
}

/// Validates the shape of a `BENCH_scale.json` document: parseable, at
/// least one cell, `<ug>x<peer>x<thr>` labels whose UG counts never
/// decrease in file order, and finite positive wall-time fields.
pub fn check_bench_shape(json: &str) -> Result<(), String> {
    let doc = painter_obs::json::parse(json).map_err(|e| format!("unparseable bench: {e}"))?;
    if doc.get("name").and_then(|v| v.as_str()).is_none() {
        return Err("bench missing name".to_string());
    }
    let cells = doc.get("cells").and_then(|v| v.as_array()).ok_or("bench missing cells array")?;
    if cells.is_empty() {
        return Err("bench has no cells".to_string());
    }
    let mut prev_ugs = 0usize;
    for cell in cells {
        let label = cell.get("label").and_then(|v| v.as_str()).ok_or("bench cell missing label")?;
        let parts: Vec<&str> = label.split('x').collect();
        if parts.len() != 3 {
            return Err(format!("bench label {label:?} is not <ug>x<peer>x<thr>"));
        }
        let ugs: usize =
            parts[0].parse().map_err(|_| format!("bench label {label:?} has no UG count"))?;
        if ugs < prev_ugs {
            return Err(format!("bench UG counts not monotone at {label:?}"));
        }
        prev_ugs = ugs;
        let fields = cell.get("fields").ok_or("bench cell missing fields")?;
        for name in ["build_ms", "full_ms", "apply_ms", "incr_ms", "scratch_ms"] {
            let v = fields
                .get(name)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("cell {label}: missing wall-time {name}"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("cell {label}: wall-time {name} = {v} not positive"));
            }
        }
    }
    Ok(())
}

/// One cell: cold compute, delta stream, incremental recompute, scratch
/// recompute, equivalence check.
fn run_cell(
    config: &ScaleConfig,
    inputs: &OrchestratorInputs,
    deltas: &[Delta],
    n_ugs: usize,
    n_peerings: usize,
    threads: usize,
    build_ms: f64,
) -> Result<CellOutcome, String> {
    let orch_config = OrchestratorConfig {
        prefix_budget: config.prefix_budget,
        threads: Some(threads),
        min_marginal_benefit: config.min_marginal_frac * inputs.total_possible_benefit(),
        ..Default::default()
    };
    let mut orch = Orchestrator::new(inputs.clone(), orch_config);

    let t0 = Instant::now();
    let (cold_config, _cold_trace) = orch.compute_config_incremental();
    let full_ms = ms_since(t0);

    let t0 = Instant::now();
    for delta in deltas {
        orch.apply_delta(delta.clone());
    }
    let apply_ms = ms_since(t0);

    let t0 = Instant::now();
    let (incr_config, incr_trace) = orch.compute_config_incremental();
    let incr_ms = ms_since(t0);

    let t0 = Instant::now();
    let scratch = Orchestrator::new(orch.inputs.clone(), orch.config.clone());
    let (scratch_config, scratch_trace) = scratch.compute_config_traced();
    let scratch_ms = ms_since(t0);

    let incr_benefit = incr_trace.after_each_prefix.last().map(|&(_, b)| b).unwrap_or(0.0);
    Ok(CellOutcome {
        n_ugs,
        n_peerings,
        threads,
        candidacies: inputs.ugs.iter().map(|u| u.candidates.len()).sum(),
        cold_prefixes: cold_config.prefix_count(),
        cold_pairs: cold_config.pair_count(),
        cold_fnv: advert_fnv(&cold_config),
        incr_prefixes: incr_config.prefix_count(),
        incr_pairs: incr_config.pair_count(),
        incr_fnv: advert_fnv(&incr_config),
        incr_benefit,
        deltas: deltas.len(),
        matches_scratch: incr_config == scratch_config && incr_trace == scratch_trace,
        build_ms,
        full_ms,
        apply_ms,
        incr_ms,
        scratch_ms,
    })
}

/// Synthesizes orchestrator inputs over the generated stub population:
/// `n_peerings` peerings round-robin over the `config.pops` heaviest
/// world metros, each UG gets 2–5 hash-chosen candidate peerings with
/// distance-derived believed latencies, and an anycast latency a hashed
/// few milliseconds above its best candidate.
pub fn synthesize_inputs(
    config: &ScaleConfig,
    ugs: &[UserGroup],
    n_peerings: usize,
) -> OrchestratorInputs {
    let pop_metros = heaviest_metros(config.pops);
    let pop_points: Vec<GeoPoint> = pop_metros.iter().map(|&m| metro(m).point()).collect();
    let peering_pop: Vec<usize> = (0..n_peerings).map(|i| i % pop_points.len()).collect();

    let mut views = Vec::with_capacity(ugs.len());
    let mut ug_pop_km = Vec::with_capacity(ugs.len());
    for (u, ug) in ugs.iter().enumerate() {
        let here = metro(ug.metro).point();
        let pop_km: Vec<f64> = pop_points.iter().map(|p| here.haversine_km(p)).collect();
        let u64u = u as u64;
        let degree = 2 + (h64(&[config.seed, 0xDE6, u64u]) % 4) as usize;
        let hp = h64(&[config.seed, 0xF1C4, u64u]);
        let start = (hp % n_peerings as u64) as usize;
        let stride = 1 + ((hp >> 17) % (n_peerings.max(2) - 1) as u64) as usize;
        let mut candidates: Vec<(PeeringId, f64)> = (0..degree)
            .map(|k| {
                let pe = (start + k * stride) % n_peerings;
                let jitter = (h64(&[config.seed, 0x1A7, u64u, pe as u64]) % 1200) as f64 / 100.0;
                let ms = 2.0 * one_way_ms(pop_km[peering_pop[pe]]) + 4.0 + jitter + ug.last_mile_ms;
                (PeeringId(pe as u32), ms)
            })
            .collect();
        candidates.sort_by_key(|&(p, _)| p);
        candidates.dedup_by_key(|&mut (p, _)| p);
        let best = candidates.iter().map(|&(_, l)| l).fold(f64::INFINITY, f64::min);
        let anycast_ms = best + 1.0 + (h64(&[config.seed, 0xA2C, u64u]) % 1600) as f64 / 100.0;
        views.push(UgView {
            id: ug.id,
            metro: ug.metro,
            weight: ug.weight,
            anycast_ms,
            candidates,
        });
        ug_pop_km.push(pop_km);
    }
    OrchestratorInputs {
        ugs: views,
        ug_pop_km,
        peering_pop,
        peering_count: n_peerings,
        capacities: None,
    }
}

/// The `config.pops` heaviest world metros (ties by id), the synthetic
/// deployment's PoP sites.
fn heaviest_metros(pops: usize) -> Vec<MetroId> {
    let mut ids: Vec<u16> = (0..WORLD_METROS.len() as u16).collect();
    ids.sort_by(|&a, &b| {
        let (wa, wb) = (WORLD_METROS[a as usize].weight, WORLD_METROS[b as usize].weight);
        wb.partial_cmp(&wa).expect("finite metro weight").then(a.cmp(&b))
    });
    ids.truncate(pops.min(ids.len()));
    ids.into_iter().map(MetroId).collect()
}

/// The deterministic delta stream of one `(ug_count, peering_count)`
/// sweep — identical for every thread count, so their post-delta
/// configurations are comparable.
pub fn delta_stream(config: &ScaleConfig, n_ugs: usize, n_peerings: usize) -> Vec<Delta> {
    (0..config.deltas)
        .map(|k| {
            let h = h64(&[config.seed, 0xDE17A, n_ugs as u64, n_peerings as u64, k as u64]);
            let ug = UgId(((h >> 8) % n_ugs as u64) as u32);
            let peering = PeeringId(((h >> 40) % n_peerings as u64) as u32);
            match h % 4 {
                0 => MeasurementDelta::RttShift {
                    ug,
                    peering,
                    ms: 10.0 + ((h >> 16) % 700) as f64 / 10.0,
                }
                .into(),
                1 => MeasurementDelta::DemandShift {
                    ug,
                    weight: 0.25 + ((h >> 16) % 1000) as f64 / 125.0,
                }
                .into(),
                2 => TopologyDelta::RemovePeering { peering }.into(),
                _ => TopologyDelta::AddPeering {
                    peering,
                    candidates: (0..config.add_candidates)
                        .map(|j| {
                            let g = h64(&[h, j as u64]);
                            (
                                UgId((g % n_ugs as u64) as u32),
                                15.0 + ((g >> 32) % 600) as f64 / 10.0,
                            )
                        })
                        .collect(),
                }
                .into(),
            }
        })
        .collect()
}

/// Order-sensitive digest of an advertisement configuration.
fn advert_fnv(config: &AdvertConfig) -> u64 {
    let mut h = Fnv1a::new();
    for (prefix, peerings) in config.iter() {
        h.update(&u64::from(prefix.0).to_le_bytes());
        for p in peerings {
            h.update(&u64::from(p.0).to_le_bytes());
        }
    }
    h.finish()
}

/// FNV-1a over a word sequence.
fn h64(parts: &[u64]) -> u64 {
    let mut h = Fnv1a::new();
    for p in parts {
        h.update(&p.to_le_bytes());
    }
    h.finish()
}

fn ms_since(t0: Instant) -> f64 {
    // Floor at a nanosecond so bench fields stay strictly positive even
    // on coarse clocks.
    (t0.elapsed().as_secs_f64() * 1e3).max(1e-6)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Debug-build-sized sweep: the schema and the equivalence contract
    /// are what is under test, not the cell sizes.
    fn tiny(seed: u64) -> ScaleConfig {
        ScaleConfig {
            ug_counts: vec![400, 900],
            peering_counts: vec![12],
            thread_counts: vec![1, 2],
            pops: 6,
            prefix_budget: 4,
            deltas: 10,
            add_candidates: 4,
            ..ScaleConfig::for_scale(Scale::Test, seed)
        }
    }

    #[test]
    fn synthetic_inputs_are_well_formed() {
        let config = tiny(3);
        let world = generate(TopologyConfig::scale(3, 400));
        let ugs = build_user_groups(&world, 3);
        let inputs = synthesize_inputs(&config, &ugs, 12);
        assert_eq!(inputs.ugs.len(), 400);
        assert_eq!(inputs.peering_count, 12);
        assert_eq!(inputs.peering_pop.len(), 12);
        for u in &inputs.ugs {
            assert!(!u.candidates.is_empty() && u.candidates.len() <= 5);
            assert!(u.candidates.windows(2).all(|w| w[0].0 < w[1].0), "sorted, deduped");
            let best = u.best_candidate_ms().unwrap();
            assert!(u.anycast_ms > best, "anycast leaves improvement room");
        }
        assert!(inputs.total_possible_benefit() > 0.0);
    }

    #[test]
    fn tiny_sweep_is_deterministic_and_scratch_equivalent() {
        let a = run_scale(Scale::Test, tiny(5)).expect("sweep a");
        let b = run_scale(Scale::Test, tiny(5)).expect("sweep b");
        // run_scale already errors on any incremental/scratch or
        // cross-thread divergence; determinism is checked by rendering.
        let render = |r: &ScaleRun| {
            let mut report = painter_obs::RunReport::new("scale");
            for s in r.sections() {
                report.push_section(s);
            }
            report.to_json()
        };
        assert_eq!(render(&a), render(&b));
        assert!(a.cells.iter().all(|c| c.matches_scratch));
        // The delta stream actually perturbs the plan somewhere in the
        // sweep — otherwise the equivalence check proves nothing.
        assert!(
            a.cells.iter().any(|c| c.cold_fnv != c.incr_fnv),
            "deltas never changed any configuration"
        );
    }

    #[test]
    fn bench_trajectory_covers_every_cell_and_passes_shape_check() {
        let config = tiny(7);
        let expected =
            config.ug_counts.len() * config.peering_counts.len() * config.thread_counts.len();
        let run = run_scale(Scale::Test, config).expect("sweep");
        assert_eq!(run.cells.len(), expected);
        let bench = run.bench();
        assert_eq!(bench.cells.len(), expected);
        for cell in &run.cells {
            assert!(bench.cell(&cell.label()).is_some(), "bench missing {}", cell.label());
        }
        check_bench_shape(&bench.to_json()).expect("shape");
    }

    #[test]
    fn shape_check_rejects_malformed_documents() {
        assert!(check_bench_shape("not json").is_err());
        assert!(check_bench_shape(r#"{"name":"scale","cells":[]}"#).is_err());
        // Non-monotone UG counts.
        let bad = r#"{"name":"scale","cells":[
            {"label":"900x12x1","fields":{"build_ms":1.0,"full_ms":1.0,"apply_ms":1.0,"incr_ms":1.0,"scratch_ms":1.0}},
            {"label":"400x12x1","fields":{"build_ms":1.0,"full_ms":1.0,"apply_ms":1.0,"incr_ms":1.0,"scratch_ms":1.0}}]}"#;
        assert!(check_bench_shape(bad).is_err());
        // Missing wall-time field.
        let missing = r#"{"name":"scale","cells":[
            {"label":"400x12x1","fields":{"build_ms":1.0}}]}"#;
        assert!(check_bench_shape(missing).is_err());
    }
}
