//! Standard evaluation scenarios.
//!
//! Two deployments mirror the paper's two settings:
//!
//! * **Azure-like** — a large global deployment (the simulated-measurement
//!   evaluation of Fig. 6a): many PoPs, many peerings, probe coverage at
//!   47% of traffic with Appendix-C extrapolation filling the rest.
//! * **PEERING-like** — the 25-PoP Vultr prototype (Fig. 6b/6c): smaller,
//!   but measured directly (the prototype pings clients itself).

use painter_measure::{build_user_groups, UserGroup};
use painter_topology::{
    generate, CustomerCones, Deployment, DeploymentConfig, Internet, TopologyConfig,
};

/// Input sizing for a harness run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-fast inputs for tests.
    Test,
    /// Evaluation-size inputs (run in release).
    Paper,
    /// Long-horizon soak campaigns (`figures soak`): test-sized worlds
    /// under days-of-virtual-time clocks, so endurance — not input size —
    /// is what grows.
    Soak,
}

/// A fully built world: Internet, cloud deployment, user groups, cones.
pub struct Scenario {
    pub net: Internet,
    pub deployment: Deployment,
    pub ugs: Vec<UserGroup>,
    pub cones: CustomerCones,
    pub seed: u64,
}

/// The hidden tie-break salt every scenario shares (one "Internet").
pub const SALT: u64 = 0x9A1E;

impl Scenario {
    /// Builds a scenario from explicit configs.
    pub fn build(topology: TopologyConfig, deployment: DeploymentConfig, seed: u64) -> Scenario {
        let net = generate(topology);
        let dep = Deployment::generate(&net.graph, &deployment);
        let ugs = build_user_groups(&net, seed);
        let cones = CustomerCones::compute(&net.graph);
        Scenario { net, deployment: dep, ugs, cones, seed }
    }

    /// The Azure-like global deployment.
    pub fn azure_like(scale: Scale, seed: u64) -> Scenario {
        let (topology, deployment) = match scale {
            // Soak shares the test-sized world: long campaigns grow the
            // clock, not the input.
            Scale::Test | Scale::Soak => (
                TopologyConfig {
                    seed,
                    num_tier1: 6,
                    transit_per_region: 4,
                    access_per_region: 10,
                    num_stubs: 220,
                    ..Default::default()
                },
                DeploymentConfig { seed, num_pops: 14, ..Default::default() },
            ),
            Scale::Paper => (
                TopologyConfig {
                    seed,
                    num_tier1: 12,
                    transit_per_region: 8,
                    access_per_region: 30,
                    num_stubs: 2200,
                    ..Default::default()
                },
                DeploymentConfig { seed, num_pops: 44, ..Default::default() },
            ),
        };
        Scenario::build(topology, deployment, seed)
    }

    /// The PEERING/Vultr-like prototype deployment (25 PoPs).
    pub fn peering_like(scale: Scale, seed: u64) -> Scenario {
        let (topology, deployment) = match scale {
            Scale::Test | Scale::Soak => (
                TopologyConfig {
                    seed,
                    num_tier1: 5,
                    transit_per_region: 3,
                    access_per_region: 8,
                    num_stubs: 180,
                    ..Default::default()
                },
                DeploymentConfig {
                    seed,
                    num_pops: 10,
                    num_transit_providers: 3,
                    ..Default::default()
                },
            ),
            Scale::Paper => (
                TopologyConfig {
                    seed,
                    num_tier1: 10,
                    transit_per_region: 7,
                    access_per_region: 24,
                    num_stubs: 1600,
                    ..Default::default()
                },
                DeploymentConfig {
                    seed,
                    num_pops: 25,
                    num_transit_providers: 3,
                    // The prototype peers broadly (9,000 ingresses over 25
                    // PoPs in the paper).
                    peer_prob_transit: 0.7,
                    peer_prob_access: 0.55,
                    ..Default::default()
                },
            ),
        };
        Scenario::build(topology, deployment, seed)
    }

    /// Number of ingresses (peerings) — the unit prefix budgets are
    /// reported against.
    pub fn ingress_count(&self) -> usize {
        self.deployment.peerings().len()
    }

    /// Budget points as fractions of the ingress count (the paper's
    /// x-axis), deduplicated and at least 1 prefix each.
    pub fn budget_sweep(&self, fractions: &[f64]) -> Vec<(f64, usize)> {
        let n = self.ingress_count() as f64;
        let mut out: Vec<(f64, usize)> =
            fractions.iter().map(|&f| (f, ((n * f / 100.0).round() as usize).max(1))).collect();
        out.dedup_by_key(|(_, b)| *b);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn azure_test_scale_builds_quickly() {
        let s = Scenario::azure_like(Scale::Test, 1);
        assert!(s.ingress_count() > 20, "got {}", s.ingress_count());
        assert_eq!(s.ugs.len(), 220);
        assert_eq!(s.deployment.pops().len(), 14);
    }

    #[test]
    fn peering_test_scale_builds_quickly() {
        let s = Scenario::peering_like(Scale::Test, 1);
        assert_eq!(s.deployment.pops().len(), 10);
        assert!(!s.ugs.is_empty());
    }

    #[test]
    fn budget_sweep_is_monotone_and_positive() {
        let s = Scenario::azure_like(Scale::Test, 2);
        let sweep = s.budget_sweep(&[0.1, 1.0, 10.0, 100.0]);
        assert!(!sweep.is_empty());
        for w in sweep.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
        assert!(sweep.iter().all(|(_, b)| *b >= 1));
        assert_eq!(sweep.last().unwrap().1, s.ingress_count());
    }

    #[test]
    fn scenarios_are_deterministic() {
        let a = Scenario::azure_like(Scale::Test, 7);
        let b = Scenario::azure_like(Scale::Test, 7);
        assert_eq!(a.ingress_count(), b.ingress_count());
        assert_eq!(a.net.graph.links().len(), b.net.graph.links().len());
    }
}
