//! LP/MCF optimality-gap harness (`figures lp-gap`, `lp.*` sections).
//!
//! The paper evaluates PAINTER's greedy One-per-Peering heuristic but
//! never against an exact baseline. This harness closes that gap with
//! `painter-solve`: on each scenario it generates per-peering capacities
//! ([`CapacityPlan`]), plans the greedy advertisement, then solves two
//! linear programs over the *same* coefficient model —
//!
//! * **exact** ([`FlowInstance::exact`]): every candidate peering is an
//!   option (unbudgeted), the true optimum of capacity-aware placement;
//! * **greedy** ([`FlowInstance::restricted`]): only the (prefix,
//!   peering) pairs the greedy [`AdvertConfig`] actually advertises.
//!
//! The restricted option set is a subset of the exact one, so
//! `exact_benefit >= greedy_benefit` on every instance and the reported
//! `gap_pct` is never negative. Alongside the gap, each scenario reports
//! the max link utilization of capacity-blind placement (`mlu_before`,
//! may exceed 1) against the LP's lexicographic latency-then-MLU optimum
//! (`mlu_after`, never exceeds 1).
//!
//! The `flash-crowd` scenario compiles a [`FaultKind::FlashCrowd`]
//! campaign: a seeded UG cohort multiplies its demand mid-run, and the
//! harness compares how a greedy plan fares when traffic follows
//! latency blindly (overload, MLU > 1) versus capacity-aware spill
//! placement and the restricted LP (both hold MLU <= 1) — the
//! `chaos.flash-crowd.flashcrowd` section. The LP's placement is then
//! *delivered*: its per-prefix splits become WCMP weights on per-UG
//! tunnel sets and a deterministic packet train runs through
//! [`MultipathScheduler`] against a latency-only scheduler, closing the
//! promise-vs-delivery loop in the `lp.delivered` section. Everything
//! downstream of the seed is deterministic; the `lp-gap-smoke` CI job
//! byte-compares two same-seed runs.

use crate::helpers::world_direct;
use crate::scenario::{Scale, Scenario};
use painter_bgp::{AdvertConfig, PrefixId};
use painter_chaos::{
    surge_cohort, FaultEvent, FaultKind, FaultSpec, ScenarioSpec, Schedule, Target, WorldView,
};
use painter_core::{
    ConfigEvaluator, Orchestrator, OrchestratorConfig, OrchestratorInputs, PlacementMode,
    RoutingModel,
};
use painter_obs::Section;
use painter_solve::{FlowInstance, PlacementSolution};
use painter_tm::{wcmp_weights, EdgeConfig, MultipathScheduler, TmEdge, TunnelId};
use painter_topology::{CapacityConfig, CapacityPlan};

/// Deterministic packets per UG in the delivered-load replay.
const DELIVERED_PACKETS: usize = 200;
/// Sentinel prefix for the anycast fallback tunnel (never appears in
/// `prefix_splits`, so `wcmp_weights` gives it 0 and the explicit
/// leftover weight is installed on top).
const ANYCAST_SENTINEL: PrefixId = PrefixId(u16::MAX);

/// Knobs for one [`run_lp_gap`]: instance bounds, capacity headroom, and
/// the flash-crowd shape.
#[derive(Debug, Clone, Copy)]
pub struct LpGapConfig {
    /// Master seed: capacities, greedy tie-breaks, and the surge cohort
    /// all derive from it.
    pub seed: u64,
    /// Total capacity as a multiple of total demand in the gap
    /// scenarios (scarce enough that capacity binds, loose enough that
    /// the greedy plan stays feasible).
    pub headroom: f64,
    /// Tighter headroom for the flash-crowd world, so the surge is what
    /// overloads it.
    pub surge_headroom: f64,
    /// Demand multiplier of the surging cohort.
    pub surge_factor: f64,
    /// Fraction of the UG population that surges.
    pub surge_fraction: f64,
    /// Keep only the `max_ugs` heaviest UGs (the dense simplex tableau
    /// is quadratic in instance size; the kept share is reported).
    pub max_ugs: usize,
    /// Keep only each UG's `max_options` best candidate peerings.
    pub max_options: usize,
    /// Greedy prefix budget as a percentage of the ingress count (the
    /// paper's ~15% operating point).
    pub budget_pct: f64,
}

impl LpGapConfig {
    /// Scale-appropriate defaults: Test keeps instances debug-build
    /// sized, Paper widens them (run in release).
    pub fn for_scale(scale: Scale, seed: u64) -> LpGapConfig {
        let (max_ugs, max_options) = match scale {
            Scale::Test | Scale::Soak => (120, 5),
            Scale::Paper => (360, 8),
        };
        LpGapConfig {
            seed,
            headroom: 2.0,
            surge_headroom: 1.25,
            surge_factor: 6.0,
            surge_fraction: 0.35,
            max_ugs,
            max_options,
            budget_pct: 15.0,
        }
    }
}

/// One scenario's exact-vs-greedy comparison.
#[derive(Debug, Clone)]
pub struct GapOutcome {
    pub name: &'static str,
    /// UGs in the (subsampled) instance.
    pub ugs: usize,
    /// Share of the scenario's total demand the kept UGs carry (%).
    pub demand_kept_pct: f64,
    pub peerings: usize,
    /// Greedy prefix budget used.
    pub budget: usize,
    /// The unbudgeted optimum.
    pub exact: PlacementSolution,
    /// The LP restricted to the greedy advertisement.
    pub greedy: PlacementSolution,
    /// MLU of capacity-blind placement onto the greedy plan.
    pub mlu_before: f64,
    /// UGs the exact optimum fractionally splits across >1 option.
    pub split_ugs: usize,
}

impl GapOutcome {
    /// Greedy optimality gap in percent of the exact benefit (>= 0 by
    /// construction).
    pub fn gap_pct(&self) -> f64 {
        if self.exact.benefit <= 0.0 {
            return 0.0;
        }
        ((self.exact.benefit - self.greedy.benefit) / self.exact.benefit * 100.0).max(0.0)
    }

    /// The `lp.<name>` report section.
    pub fn section(&self) -> Section {
        Section::new(format!("lp.{}", self.name))
            .field("ugs", self.ugs)
            .field("demand_kept_pct", self.demand_kept_pct)
            .field("peerings", self.peerings)
            .field("budget", self.budget)
            .field("vars", self.exact.vars)
            .field("rows", self.exact.rows)
            .field("exact_benefit", self.exact.benefit)
            .field("exact_mlu", self.exact.mlu)
            .field("exact_pivots", self.exact.pivots)
            .field("greedy_benefit", self.greedy.benefit)
            .field("greedy_mlu", self.greedy.mlu)
            .field("greedy_pivots", self.greedy.pivots)
            .field("phase1_pivots", self.exact.phase1_pivots + self.greedy.phase1_pivots)
            .field("gap_pct", self.gap_pct())
            .field("mlu_before", self.mlu_before)
            .field("mlu_after", self.greedy.mlu)
            .field("split_ugs", self.split_ugs)
    }
}

/// The flash-crowd comparison: the same greedy plan under surged demand,
/// placed three ways.
#[derive(Debug, Clone)]
pub struct FlashCrowdOutcome {
    pub factor: f64,
    pub fraction: f64,
    /// UGs in the surging cohort.
    pub cohort_ugs: usize,
    /// Demand share of the cohort pre-surge (%).
    pub cohort_weight_pct: f64,
    /// Capacity-blind placement: benefit and (overloaded) MLU.
    pub latency_benefit: f64,
    pub latency_mlu: f64,
    pub latency_overload: f64,
    /// Capacity-aware water-filling on the same plan.
    pub aware_benefit: f64,
    pub aware_mlu: f64,
    /// The restricted LP optimum under the surged demand.
    pub lp_benefit: f64,
    pub lp_mlu: f64,
}

impl FlashCrowdOutcome {
    /// Whether capacity-aware placement absorbed the surge the blind
    /// placement could not (the acceptance condition).
    pub fn absorbed(&self) -> bool {
        self.latency_mlu > 1.0 && self.aware_mlu <= 1.0 + 1e-9 && self.aware_mlu < self.latency_mlu
    }

    /// The `chaos.flash-crowd.flashcrowd` report section.
    pub fn section(&self) -> Section {
        Section::new("chaos.flash-crowd.flashcrowd")
            .field("factor", self.factor)
            .field("fraction", self.fraction)
            .field("cohort_ugs", self.cohort_ugs)
            .field("cohort_weight_pct", self.cohort_weight_pct)
            .field("latency_benefit", self.latency_benefit)
            .field("latency_mlu", self.latency_mlu)
            .field("latency_overload", self.latency_overload)
            .field("aware_benefit", self.aware_benefit)
            .field("aware_mlu", self.aware_mlu)
            .field("lp_benefit", self.lp_benefit)
            .field("lp_mlu", self.lp_mlu)
            .field("absorbed", self.absorbed())
    }
}

/// The delivered-load replay of the flash-crowd segment: the restricted
/// LP's per-prefix splits are installed as WCMP weights on a per-UG
/// tunnel set ([`wcmp_weights`]) and a fixed deterministic packet train
/// is scheduled through [`MultipathScheduler`], against a latency-only
/// comparator that sends every packet down the lowest-RTT tunnel.
///
/// This is what the LP *promises* versus what a packet scheduler
/// *delivers*: WCMP steers at prefix granularity (each prefix lands on
/// the UG's single BGP-best peering for it), so intra-prefix splits the
/// LP made across peerings collapse onto one ingress and the delivered
/// MLU can sit slightly above `lp_mlu`. LP slack — demand the LP left
/// unplaced — stays on anycast, loading no capacitated peering, exactly
/// as the LP accounts it.
#[derive(Debug, Clone)]
pub struct DeliveredOutcome {
    /// UGs with at least one advertised option (the replayed set).
    pub ugs: usize,
    pub packets_per_ug: usize,
    /// Share of total demand WCMP leaves on anycast (LP slack + zero
    /// -option UGs), in percent.
    pub anycast_share_pct: f64,
    /// Delivered MLU / loss when packets follow the LP's WCMP weights.
    pub wcmp_mlu: f64,
    pub wcmp_loss_pct: f64,
    /// Delivered MLU / loss when every packet chases the lowest RTT.
    pub latency_mlu: f64,
    pub latency_loss_pct: f64,
    /// The MLU the LP promised on the same surged instance.
    pub lp_mlu: f64,
}

impl DeliveredOutcome {
    /// Whether the WCMP schedule delivered the surge the latency-only
    /// scheduler dropped: blind packets overload, WCMP packets track the
    /// LP's feasible placement.
    pub fn delivers(&self) -> bool {
        self.latency_mlu > 1.0
            && self.wcmp_mlu < self.latency_mlu
            && self.wcmp_loss_pct <= self.latency_loss_pct + 1e-9
    }

    /// The `lp.delivered` report section.
    pub fn section(&self) -> Section {
        Section::new("lp.delivered")
            .field("ugs", self.ugs)
            .field("packets_per_ug", self.packets_per_ug)
            .field("anycast_share_pct", self.anycast_share_pct)
            .field("wcmp_mlu", self.wcmp_mlu)
            .field("wcmp_loss_pct", self.wcmp_loss_pct)
            .field("latency_mlu", self.latency_mlu)
            .field("latency_loss_pct", self.latency_loss_pct)
            .field("lp_mlu", self.lp_mlu)
            .field("delivers", self.delivers())
    }
}

/// One finished lp-gap run.
#[derive(Debug, Clone)]
pub struct LpGapRun {
    pub scale: Scale,
    pub config: LpGapConfig,
    pub gaps: Vec<GapOutcome>,
    pub flash: FlashCrowdOutcome,
    pub delivered: DeliveredOutcome,
}

impl LpGapRun {
    /// The run as `lp.*` sections (config first, then one per scenario)
    /// plus the flash-crowd section.
    pub fn sections(&self) -> Vec<Section> {
        let mut out = vec![Section::new("lp.config")
            .field("seed", self.config.seed)
            .field("headroom", self.config.headroom)
            .field("surge_headroom", self.config.surge_headroom)
            .field("surge_factor", self.config.surge_factor)
            .field("surge_fraction", self.config.surge_fraction)
            .field("max_ugs", self.config.max_ugs)
            .field("max_options", self.config.max_options)
            .field("budget_pct", self.config.budget_pct)];
        out.extend(self.gaps.iter().map(GapOutcome::section));
        out.push(self.delivered.section());
        out.push(self.flash.section());
        out
    }
}

/// Runs the full lp-gap suite: the azure-like and peering-like worlds at
/// gap headroom, then the flash-crowd campaign on the peering world.
pub fn run_lp_gap(scale: Scale, config: LpGapConfig) -> Result<LpGapRun, String> {
    let azure = Scenario::azure_like(scale, config.seed);
    let peering = Scenario::peering_like(scale, config.seed);
    let gaps =
        vec![scenario_gap("azure", &azure, &config)?, scenario_gap("peering", &peering, &config)?];
    let (flash, delivered) = flash_crowd(&peering, &config)?;
    Ok(LpGapRun { scale, config, gaps, flash, delivered })
}

/// [`run_lp_gap`] rendered straight to sections for the figures binary.
pub fn lp_gap_sections(scale: Scale, seed: u64) -> Result<Vec<Section>, String> {
    Ok(run_lp_gap(scale, LpGapConfig::for_scale(scale, seed))?.sections())
}

/// Builds a capacitated, bounded instance of one scenario and plans the
/// greedy advertisement on it.
fn capacitated_world(
    s: &Scenario,
    config: &LpGapConfig,
    headroom: f64,
) -> Result<(OrchestratorInputs, AdvertConfig, usize, f64), String> {
    let world = world_direct(s);
    let (mut inputs, demand_kept_pct) =
        subsample(&world.inputs, config.max_ugs, config.max_options);
    let plan = CapacityPlan::generate(
        &s.deployment,
        &CapacityConfig { seed: config.seed, ..Default::default() },
    )
    .normalized(inputs.total_weight(), headroom);
    inputs = inputs.with_capacities(plan.into_vec());

    let budget = ((inputs.peering_count as f64 * config.budget_pct / 100.0).round() as usize)
        .clamp(2, inputs.peering_count.max(2));
    let orch = Orchestrator::new(
        inputs.clone(),
        OrchestratorConfig { prefix_budget: budget, threads: Some(1), ..Default::default() },
    );
    let advert = orch.compute_config();
    if advert.prefix_count() == 0 {
        return Err(format!("greedy planned an empty advertisement for {}", s.seed));
    }
    Ok((inputs, advert, budget, demand_kept_pct))
}

fn scenario_gap(
    name: &'static str,
    s: &Scenario,
    config: &LpGapConfig,
) -> Result<GapOutcome, String> {
    let (inputs, advert, budget, demand_kept_pct) = capacitated_world(s, config, config.headroom)?;

    let exact_inst = FlowInstance::exact(&inputs);
    let exact =
        exact_inst.solve_placement().map_err(|e| format!("lp.{name}: exact solve failed: {e}"))?;
    let greedy = FlowInstance::restricted(&inputs, &advert)
        .solve_placement()
        .map_err(|e| format!("lp.{name}: restricted solve failed: {e}"))?;

    // Capacity-blind placement of the greedy plan: the "before" MLU.
    let model = RoutingModel::new(f64::INFINITY);
    let evaluator = ConfigEvaluator::new(&inputs, &model);
    let mlu_before = evaluator.place(&advert, PlacementMode::LatencyOnly).mlu;

    let split_ugs =
        exact.splits.iter().filter(|s| s.iter().filter(|&&f| f > 1e-9).count() > 1).count();

    Ok(GapOutcome {
        name,
        ugs: inputs.ugs.len(),
        demand_kept_pct,
        peerings: inputs.peering_count,
        budget,
        exact,
        greedy,
        mlu_before,
        split_ugs,
    })
}

/// Compiles the flash-crowd campaign against the greedy plan's world and
/// compares blind, water-filling, and LP placement under the surge.
fn flash_crowd(
    s: &Scenario,
    config: &LpGapConfig,
) -> Result<(FlashCrowdOutcome, DeliveredOutcome), String> {
    let (inputs, advert, _, _) = capacitated_world(s, config, config.surge_headroom)?;

    // The surge cohort comes from the compiled chaos schedule, exactly as
    // a campaign replay would see it.
    let spec = ScenarioSpec::new("flash-crowd", 60.0).fault(
        FaultSpec::new(
            "surge",
            FaultKind::FlashCrowd { factor: config.surge_factor, fraction: config.surge_fraction },
            Target::All,
        )
        .at(10.0)
        .lasting(30.0),
    );
    let prefixes: Vec<_> = advert.iter().map(|(p, ps)| (p, ps.to_vec())).collect();
    let view = WorldView::from_deployment(&s.deployment, prefixes);
    let schedule = Schedule::compile(&spec, &view, config.seed)?;
    let Some(FaultEvent::SurgeStart { factor, fraction, cohort_seed }) = schedule
        .injections()
        .iter()
        .map(|i| i.event.clone())
        .find(|e| matches!(e, FaultEvent::SurgeStart { .. }))
    else {
        return Err("flash-crowd schedule compiled no SurgeStart".to_string());
    };
    let cohort = surge_cohort(inputs.ugs.len(), fraction, cohort_seed);
    let cohort_weight: f64 = cohort.iter().map(|&i| inputs.ugs[i].weight).sum();
    let total_weight = inputs.total_weight();

    // The operator planned `advert` before the surge; demand changes
    // under it.
    let mut surged = inputs.clone();
    for &i in &cohort {
        surged.ugs[i].weight *= factor;
    }

    let model = RoutingModel::new(f64::INFINITY);
    let evaluator = ConfigEvaluator::new(&surged, &model);
    let latency = evaluator.place(&advert, PlacementMode::LatencyOnly);
    let aware = evaluator.place(&advert, PlacementMode::CapacityAware);
    let inst = FlowInstance::restricted(&surged, &advert);
    let lp = inst.solve_placement().map_err(|e| format!("flash-crowd LP failed: {e}"))?;
    let delivered = delivered_replay(&surged, &inst, &lp);

    Ok((
        FlashCrowdOutcome {
            factor,
            fraction,
            cohort_ugs: cohort.len(),
            cohort_weight_pct: if total_weight > 0.0 {
                cohort_weight / total_weight * 100.0
            } else {
                0.0
            },
            latency_benefit: latency.benefit,
            latency_mlu: latency.mlu,
            latency_overload: latency.overload,
            aware_benefit: aware.benefit,
            aware_mlu: aware.mlu,
            lp_benefit: lp.benefit,
            lp_mlu: lp.mlu,
        },
        delivered,
    ))
}

/// Replays the surged demand as packets: per UG, one tunnel per
/// advertised prefix landing on the UG's BGP-best peering for that
/// prefix plus an anycast fallback tunnel, WCMP weights from the LP's
/// [`PlacementSolution::prefix_splits`] (anycast takes the LP's slack),
/// and [`DELIVERED_PACKETS`] equal-demand packets scheduled through the
/// smooth-WRR [`MultipathScheduler`]. The latency-only comparator sends
/// each UG's whole demand to its lowest-RTT tunnel. Offered load
/// accumulates per capacitated peering; anycast load is untracked, the
/// same accounting the LP uses.
fn delivered_replay(
    surged: &OrchestratorInputs,
    inst: &FlowInstance,
    lp: &PlacementSolution,
) -> DeliveredOutcome {
    let mut wcmp_offered = vec![0.0; inst.peering_count];
    let mut blind_offered = vec![0.0; inst.peering_count];
    let mut anycast_demand = 0.0;
    let mut total_demand = 0.0;
    let mut replayed = 0usize;

    for (i, u) in inst.ugs.iter().enumerate() {
        total_demand += u.demand;
        if u.demand <= 0.0 || u.options.is_empty() {
            anycast_demand += u.demand;
            continue;
        }
        replayed += 1;
        let anycast_ms = surged.ugs[u.ug].anycast_ms;

        // Per-prefix landing: WCMP steers prefixes, BGP picks the single
        // best peering each prefix reaches the UG through.
        let mut landing: Vec<(PrefixId, usize, f64)> = Vec::new();
        for o in &u.options {
            let Some(p) = o.prefix else { continue };
            match landing.iter_mut().find(|(q, _, _)| *q == p) {
                Some(l) => {
                    if o.improvement_ms > l.2 {
                        l.1 = o.peering;
                        l.2 = o.improvement_ms;
                    }
                }
                None => landing.push((p, o.peering, o.improvement_ms)),
            }
        }

        let mut edge = TmEdge::new(1, EdgeConfig::default());
        for (k, &(p, _, imp)) in landing.iter().enumerate() {
            edge.add_tunnel(p, 100 + k as u32, (anycast_ms - imp).max(0.1));
        }
        edge.add_tunnel(ANYCAST_SENTINEL, 99, anycast_ms.max(0.1));

        let splits = lp.prefix_splits(inst, i);
        let mut weights = wcmp_weights(&edge, &splits);
        let slack = (1.0 - splits.iter().map(|&(_, f)| f).sum::<f64>()).max(0.0);
        let anycast_slot = weights.len() - 1;
        weights[anycast_slot] = slack;
        anycast_demand += u.demand * slack;

        let per_packet = u.demand / DELIVERED_PACKETS as f64;
        let mut sched = MultipathScheduler::with_weights(weights);
        for _ in 0..DELIVERED_PACKETS {
            let Some(TunnelId(t)) = sched.next(&edge) else { break };
            if t < landing.len() {
                wcmp_offered[landing[t].1] += per_packet;
            }
        }

        // Latency-only: the whole UG chases its largest improvement.
        let best = landing
            .iter()
            .fold(None::<(usize, f64)>, |acc, &(_, peer, imp)| match acc {
                Some((_, best_imp)) if best_imp >= imp => acc,
                _ => Some((peer, imp)),
            })
            .expect("non-empty landing")
            .0;
        blind_offered[best] += u.demand;
    }

    let mlu_of = |offered: &[f64]| {
        offered
            .iter()
            .zip(&inst.capacities)
            .filter(|(_, c)| c.is_finite())
            .map(|(o, c)| o / c.max(f64::MIN_POSITIVE))
            .fold(0.0, f64::max)
    };
    let loss_of = |offered: &[f64]| {
        let spilled: f64 = offered
            .iter()
            .zip(&inst.capacities)
            .filter(|(_, c)| c.is_finite())
            .map(|(o, c)| (o - c).max(0.0))
            .sum();
        if total_demand > 0.0 {
            spilled / total_demand * 100.0
        } else {
            0.0
        }
    };

    DeliveredOutcome {
        ugs: replayed,
        packets_per_ug: DELIVERED_PACKETS,
        anycast_share_pct: if total_demand > 0.0 {
            anycast_demand / total_demand * 100.0
        } else {
            0.0
        },
        wcmp_mlu: mlu_of(&wcmp_offered),
        wcmp_loss_pct: loss_of(&wcmp_offered),
        latency_mlu: mlu_of(&blind_offered),
        latency_loss_pct: loss_of(&blind_offered),
        lp_mlu: lp.mlu,
    }
}

/// Keeps the `max_ugs` heaviest UGs (ties by index) and each kept UG's
/// `max_options` best candidates, returning the reduced inputs plus the
/// kept demand share in percent. Both LP instances, the greedy planner,
/// and the placement evaluator all consume the same reduction, so every
/// comparison stays apples-to-apples.
fn subsample(
    inputs: &OrchestratorInputs,
    max_ugs: usize,
    max_options: usize,
) -> (OrchestratorInputs, f64) {
    let total = inputs.total_weight();
    let mut order: Vec<usize> = (0..inputs.ugs.len()).collect();
    order.sort_by(|&a, &b| {
        let (wa, wb) = (inputs.ugs[a].weight, inputs.ugs[b].weight);
        wb.partial_cmp(&wa).expect("finite weight").then(a.cmp(&b))
    });
    order.truncate(max_ugs);
    order.sort_unstable();

    let mut ugs = Vec::with_capacity(order.len());
    let mut ug_pop_km = Vec::with_capacity(order.len());
    for &i in &order {
        let mut u = inputs.ugs[i].clone();
        let anycast = u.anycast_ms;
        u.candidates.sort_by(|a, b| {
            let (ia, ib) = (anycast - a.1, anycast - b.1);
            ib.partial_cmp(&ia).expect("finite latency").then(a.0.cmp(&b.0))
        });
        u.candidates.truncate(max_options);
        u.candidates.sort_unstable_by_key(|&(p, _)| p);
        ugs.push(u);
        ug_pop_km.push(inputs.ug_pop_km[i].clone());
    }
    let kept: f64 = ugs.iter().map(|u| u.weight).sum();
    let reduced = OrchestratorInputs {
        ugs,
        ug_pop_km,
        peering_pop: inputs.peering_pop.clone(),
        peering_count: inputs.peering_count,
        capacities: None,
    };
    let pct = if total > 0.0 { kept / total * 100.0 } else { 100.0 };
    (reduced, pct)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(seed: u64) -> LpGapConfig {
        // Small enough for debug-build CI, big enough that capacity binds.
        LpGapConfig { max_ugs: 40, max_options: 4, ..LpGapConfig::for_scale(Scale::Test, seed) }
    }

    #[test]
    fn exact_bounds_greedy_on_every_scenario() {
        let run = run_lp_gap(Scale::Test, tiny_config(1)).expect("lp gap run");
        assert_eq!(run.gaps.len(), 2);
        for gap in &run.gaps {
            assert!(
                gap.exact.benefit >= gap.greedy.benefit - 1e-6,
                "lp.{}: exact {} < greedy {}",
                gap.name,
                gap.exact.benefit,
                gap.greedy.benefit
            );
            assert!(gap.gap_pct() >= 0.0);
            assert!(gap.exact.mlu <= 1.0 + 1e-6, "lp.{}: exact mlu {}", gap.name, gap.exact.mlu);
            assert!(gap.greedy.mlu <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn flash_crowd_is_absorbed_only_by_capacity_aware_placement() {
        for seed in [1, 2] {
            let run = run_lp_gap(Scale::Test, tiny_config(seed)).expect("lp gap run");
            let f = &run.flash;
            assert!(f.latency_mlu > 1.0, "seed {seed}: surge did not overload: {}", f.latency_mlu);
            assert!(f.aware_mlu <= 1.0 + 1e-9, "seed {seed}: aware mlu {}", f.aware_mlu);
            assert!(f.aware_mlu < f.latency_mlu, "seed {seed}: no strict improvement");
            assert!(f.lp_mlu <= 1.0 + 1e-6, "seed {seed}: lp mlu {}", f.lp_mlu);
            // The LP never does worse than the water-filling heuristic on
            // the same option set.
            assert!(f.lp_benefit >= f.aware_benefit - 1e-6, "seed {seed}");
            assert!(f.absorbed(), "seed {seed}");
        }
    }

    #[test]
    fn wcmp_delivery_tracks_the_lp_where_latency_only_overloads() {
        for seed in [1, 2] {
            let run = run_lp_gap(Scale::Test, tiny_config(seed)).expect("lp gap run");
            let d = &run.delivered;
            assert!(d.ugs > 0, "seed {seed}: nothing replayed");
            assert!(
                d.latency_mlu > 1.0,
                "seed {seed}: latency-only packets did not overload: {}",
                d.latency_mlu
            );
            assert!(
                d.wcmp_mlu < d.latency_mlu,
                "seed {seed}: wcmp {} vs latency {}",
                d.wcmp_mlu,
                d.latency_mlu
            );
            assert!(
                d.wcmp_loss_pct <= d.latency_loss_pct + 1e-9,
                "seed {seed}: wcmp loss {} vs latency loss {}",
                d.wcmp_loss_pct,
                d.latency_loss_pct
            );
            // Prefix-granular WCMP can't realize intra-prefix splits, so
            // delivered MLU may exceed the promise — but only by the
            // packet-quantization margin, not by an overload.
            assert!(
                d.wcmp_mlu <= d.lp_mlu + 0.25,
                "seed {seed}: delivered {} strays from promised {}",
                d.wcmp_mlu,
                d.lp_mlu
            );
            assert!(d.delivers(), "seed {seed}");
        }
    }

    #[test]
    fn same_seed_runs_are_identical() {
        let a = run_lp_gap(Scale::Test, tiny_config(3)).expect("run a");
        let b = run_lp_gap(Scale::Test, tiny_config(3)).expect("run b");
        let render = |r: &LpGapRun| {
            let mut report = painter_obs::RunReport::new("lp-gap");
            for s in r.sections() {
                report.push_section(s);
            }
            report.to_json()
        };
        assert_eq!(render(&a), render(&b));
    }
}
