//! Chaos resilience harness: the generalized Fig. 10.
//!
//! Fig. 10 asks one question about one fault: after a PoP dies, how fast
//! does each steering layer recover? This module asks the same question
//! about *any* compiled [`painter_chaos::Schedule`]: a campaign runs the
//! identical fault schedule against four steering strategies —
//!
//! * **painter** — the Traffic Manager holds tunnels to every prefix and
//!   fails over on RTT-timescale probe evidence;
//! * **anycast** — a single anycast prefix; recovery waits for BGP
//!   reconvergence;
//! * **dns** — per-PoP unicast prefixes behind a health-checked DNS
//!   record; recovery waits for the next TTL boundary;
//! * **painter-closed-loop** — the same fixed plan, but the
//!   advertise→measure→learn loop keeps running *during* the campaign
//!   behind `painter_core::guard`'s containment layer (measurement
//!   quarantine, plan hysteresis, safety rollback), proposing repair
//!   announcements for sustained-dark prefixes;
//!
//! and each strategy is scored with a [`Scorecard`] (availability,
//! time-to-recover histogram, failovers, latency inflation) emitted as
//! `chaos.*` report sections. The closed loop additionally emits a
//! `chaos.<name>.learning` section ([`LearningStats`]): quarantine
//! admit/hold/discard counts, hysteresis commits, rollbacks, plan churn,
//! and compliance-inference skew against the fixed plan's witnessed
//! landings.
//!
//! Determinism: the campaign world, the compiled schedule, the sampled
//! BGP state, and every Traffic Manager run are pure functions of
//! `(spec, scale, seed)`, so a suite's sections — and their JSON
//! rendering — are byte-identical across same-seed reruns. The
//! per-campaign `chaos.<name>.schedule` section records the spec and an
//! FNV-1a digest of the injection trace as the replay receipt.

use crate::incidents::{attribute, incident_sections, Incident};
use crate::scenario::{Scale, SALT};
use painter_bgp::dynamics::{BgpEngine, DynamicsConfig};
use painter_bgp::AdvertConfig;
use painter_bgp::PrefixId;
use painter_chaos::{
    program_bgp_traced, program_tm, program_tm_traced, trace_fault_spans, DataPlaneState,
    FaultEvent, FaultKind, FaultSpec, Injection, ScenarioSpec, Schedule, Scorecard, Target,
    TmTarget, WorldView,
};
use painter_core::{
    apply_to_engine, diff, revert_plan, ConfigEvaluator, GuardConfig, HealthSample, Observations,
    ObservedReachability, Orchestrator, OrchestratorConfig, OrchestratorInputs, PlanHysteresis,
    QuarantineBuffer, RollbackGuard, UgView,
};
use painter_eventsim::{derive_seed, SimTime};
use painter_geo::{metro, Region};
use painter_measure::UgId;
use painter_obs::{Section, TraceEvent, TraceId, TraceKind, TraceSink};
use painter_tm::{TmSimulation, TmSimulationConfig, TunnelId};
use painter_topology::{AsGraph, AsId, AsTier, Deployment, PeeringId, PeeringKind, Relationship};

/// Sampling grid for coupling BGP state into the TM channel schedules.
const SAMPLE_MS: f64 = 25.0;
/// Extra RTT on the anycast path (shared front-end VIP indirection; see
/// `figs::fig10`).
const ANYCAST_OVERHEAD_MS: f64 = 4.0;

/// Closed-loop iteration cadence: one advertise→measure→learn pass per
/// this many seconds of campaign time.
const ITER_SECS: f64 = 6.0;
/// Consecutive dark iterations before a unicast prefix is declared
/// unreachable and a repair announcement is proposed.
const DARK_ITERS: u32 = 2;
/// Control-plane updates per iteration window above which a prefix's
/// advertised peerings are churn-flagged for quarantine.
const CHURN_UPDATES: usize = 6;
/// Benefit bonus per repair pair. The Eq. 1 evaluator models *latency*
/// benefit and cannot see availability, so a dark prefix's repair gets
/// an explicit urgency term that clears the hysteresis threshold while
/// no-op refinements (modeled delta ≈ 0) never do.
const REPAIR_URGENCY: f64 = 25.0;

/// Campaign clock constants, scale-dependent so tests stay fast while
/// the paper-sized run reproduces Fig. 10's 60 s TTL.
#[derive(Debug, Clone, Copy)]
pub struct ChaosTiming {
    /// BGP warm-up before the sampled series starts meaning anything.
    pub warmup_s: f64,
    /// DNS record TTL: the DNS strategy re-resolves only at multiples
    /// of this.
    pub dns_ttl_s: f64,
    /// Where the standard suite lands its first fault (mid-TTL, so DNS
    /// pays the worst-case wait).
    pub fault_at_s: f64,
    /// Campaign horizon.
    pub horizon_s: f64,
    /// Bounded capacity of the closed loop's obs event ring; overflow
    /// overwrites the oldest entry and bumps `obs.events_dropped`
    /// (surfaced in [`LearningStats`]). `0` disables event recording.
    pub event_capacity: usize,
}

impl ChaosTiming {
    /// The clock for a [`Scale`].
    pub fn for_scale(scale: Scale) -> ChaosTiming {
        match scale {
            // Sub-campaigns inside a soak reuse the test clock; the soak
            // driver strings many of them across days of virtual time,
            // with a larger event ring for the longer horizon.
            Scale::Test | Scale::Soak => ChaosTiming {
                warmup_s: 10.0,
                dns_ttl_s: 20.0,
                fault_at_s: 22.0,
                horizon_s: 60.0,
                event_capacity: if scale == Scale::Soak {
                    4 * painter_obs::Registry::DEFAULT_EVENT_CAPACITY
                } else {
                    painter_obs::Registry::DEFAULT_EVENT_CAPACITY
                },
            },
            Scale::Paper => ChaosTiming {
                warmup_s: 30.0,
                dns_ttl_s: 60.0,
                fault_at_s: 65.0,
                horizon_s: 130.0,
                event_capacity: painter_obs::Registry::DEFAULT_EVENT_CAPACITY,
            },
        }
    }
}

/// One campaign's full result: the compiled schedule (the replay
/// artifact) plus one scorecard per strategy.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    pub schedule: Schedule,
    /// Canonical JSON of the source spec (provenance).
    pub spec_json: String,
    pub painter: Scorecard,
    pub anycast: Scorecard,
    pub dns: Scorecard,
    pub closed_loop: Scorecard,
    /// What the guarded learning loop did while the faults ran.
    pub learning: LearningStats,
    /// One attribution record per spec fault (empty-fault specs aside,
    /// never empty — unobserved faults are explicit, not dropped).
    pub incidents: Vec<Incident>,
    /// The raw causal trace (empty under `obs-off`), for Chrome-trace
    /// export and timeline rendering.
    pub events: Vec<TraceEvent>,
}

impl CampaignOutcome {
    /// The four scorecards in fixed (painter, anycast, dns,
    /// painter-closed-loop) order.
    pub fn scorecards(&self) -> [&Scorecard; 4] {
        [&self.painter, &self.anycast, &self.dns, &self.closed_loop]
    }

    /// Report sections: a `chaos.<name>.schedule` provenance section,
    /// one `chaos.<name>.<strategy>` section per strategy, the
    /// `chaos.<name>.learning` closed-loop diagnostics, then the
    /// `chaos.<name>.incidents` attribution summary and one
    /// `chaos.<name>.incident<k>` record per fault.
    pub fn sections(&self) -> Vec<Section> {
        let mut out = Vec::with_capacity(7 + self.incidents.len());
        out.push(
            Section::new(format!("chaos.{}.schedule", self.schedule.name))
                .field("seed", self.schedule.seed)
                .field("injections", self.schedule.injections().len())
                .field(
                    "first_fault_ms",
                    self.schedule.first_at().map(|t| t.as_ms()).unwrap_or(-1.0),
                )
                .field("trace_fnv1a", format!("{:016x}", self.schedule.trace_digest()))
                .field("spec", self.spec_json.as_str()),
        );
        for sc in self.scorecards() {
            out.push(sc.section());
        }
        out.push(self.learning.section(&self.schedule.name));
        out.extend(incident_sections(&self.schedule.name, &self.incidents));
        out
    }
}

/// What the guarded learning loop did during one campaign: quarantine
/// flow, hysteresis decisions, rollbacks, plan churn, and how far the
/// loop's end-state beliefs drifted from the fixed plan's witnessed
/// landings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LearningStats {
    /// Advertise→measure→learn iterations run inside the campaign.
    pub iterations: u64,
    /// Measurement samples offered to the quarantine screen.
    pub samples_offered: u64,
    /// Samples admitted to the learner (fresh + released from hold).
    pub samples_admitted: u64,
    /// Samples that entered quarantine hold.
    pub samples_quarantined: u64,
    /// Held samples discarded (re-flagged churn or keyless).
    pub samples_discarded: u64,
    /// Samples still in hold at the horizon.
    pub quarantine_held: u64,
    /// Plan changes the hysteresis gate let through.
    pub hysteresis_commits: u64,
    /// Sub-threshold iterations that reset the commit streak.
    pub hysteresis_resets: u64,
    /// Installs reverted by the safety guard.
    pub rollbacks: u64,
    /// Installer operations applied (installs + reverts).
    pub install_ops: u64,
    /// Installer operations per iteration.
    pub plan_churn_rate: f64,
    /// `(prefix, peering)` pairs advertised at the horizon.
    pub final_pairs: u64,
    /// Dominance facts learned from admitted samples.
    pub dominance_learned: u64,
    /// `(UG, ingress)` pairs still marked unreachable at the horizon.
    pub unreachable_marks: u64,
    /// Fraction of witnessed fixed-plan landings the loop's end-state
    /// beliefs miss.
    pub compliance_miss_rate: f64,
    /// Fraction of end-state believed ingresses never witnessed landing.
    pub compliance_spurious_rate: f64,
    /// Events the bounded obs ring overwrote (ring capacity set by
    /// [`ChaosTiming::event_capacity`]).
    pub events_dropped: u64,
}

impl LearningStats {
    /// The `chaos.<campaign>.learning` report section (schema pinned by
    /// `tests/obs_report.rs`).
    pub fn section(&self, campaign: &str) -> Section {
        Section::new(format!("chaos.{campaign}.learning"))
            .field("iterations", self.iterations)
            .field("samples_offered", self.samples_offered)
            .field("samples_admitted", self.samples_admitted)
            .field("samples_quarantined", self.samples_quarantined)
            .field("samples_discarded", self.samples_discarded)
            .field("quarantine_held", self.quarantine_held)
            .field("hysteresis_commits", self.hysteresis_commits)
            .field("hysteresis_resets", self.hysteresis_resets)
            .field("rollbacks", self.rollbacks)
            .field("rollback_demonstrated", self.rollbacks > 0)
            .field("install_ops", self.install_ops)
            .field("plan_churn_rate", self.plan_churn_rate)
            .field("final_pairs", self.final_pairs)
            .field("dominance_learned", self.dominance_learned)
            .field("unreachable_marks", self.unreachable_marks)
            .field("compliance_miss_rate", self.compliance_miss_rate)
            .field("compliance_spurious_rate", self.compliance_spurious_rate)
            .field("events_dropped", self.events_dropped)
    }
}

/// The campaign world: fig10's two-PoP shape (New York = PoP-A,
/// London = PoP-B, two transit ISPs at both, the enterprise stub in New
/// York behind two regional access ISPs, plus churn bystanders).
pub(crate) struct HarnessWorld {
    pub(crate) graph: AsGraph,
    pub(crate) deployment: Deployment,
    pub(crate) stub: AsId,
    pub(crate) stub_metro: painter_geo::MetroId,
    /// The churn bystander stubs — sampled (read-only) during campaigns
    /// to measure each fault's blast radius in rerouted user groups.
    pub(crate) bystanders: Vec<AsId>,
}

pub(crate) fn build_world() -> HarnessWorld {
    let ny = painter_geo::metro::all_metro_ids()
        .find(|&m| metro(m).name == "New York")
        .expect("metro db");
    let lon =
        painter_geo::metro::all_metro_ids().find(|&m| metro(m).name == "London").expect("metro db");
    let mut graph = AsGraph::new();
    let isp1 = graph.add_node(AsTier::Tier1, Region::NorthAmerica, vec![ny, lon], 1.05);
    let isp2 = graph.add_node(AsTier::Tier1, Region::Europe, vec![ny, lon], 1.15);
    let acc1 = graph.add_node(AsTier::Access, Region::NorthAmerica, vec![ny], 1.0);
    let acc2 = graph.add_node(AsTier::Access, Region::NorthAmerica, vec![ny], 1.1);
    let stub = graph.add_node(AsTier::Stub, Region::NorthAmerica, vec![ny], 1.0);
    graph.add_link(isp1, isp2, Relationship::PeerWith).expect("new link");
    graph.add_link(isp1, acc1, Relationship::ProviderOf).expect("new link");
    graph.add_link(isp2, acc1, Relationship::ProviderOf).expect("new link");
    graph.add_link(isp1, acc2, Relationship::ProviderOf).expect("new link");
    graph.add_link(isp2, acc2, Relationship::ProviderOf).expect("new link");
    graph.add_link(acc1, stub, Relationship::ProviderOf).expect("new link");
    graph.add_link(acc2, stub, Relationship::ProviderOf).expect("new link");
    let mut bystanders = Vec::with_capacity(8);
    for i in 0..8 {
        let bystander = graph.add_node(AsTier::Stub, Region::NorthAmerica, vec![ny], 1.0);
        let upstream = if i % 2 == 0 { acc1 } else { acc2 };
        graph.add_link(upstream, bystander, Relationship::ProviderOf).expect("new link");
        bystanders.push(bystander);
    }
    let deployment = Deployment::from_parts(
        vec![ny, lon],
        vec![
            (0, isp1, PeeringKind::TransitProvider),
            (0, isp2, PeeringKind::TransitProvider),
            (1, isp1, PeeringKind::TransitProvider),
            (1, isp2, PeeringKind::TransitProvider),
        ],
    );
    HarnessWorld { graph, deployment, stub, stub_metro: ny, bystanders }
}

/// Chaos tunnel index 0 is the anycast prefix; 1.. are the per-peering
/// unicast prefixes (the order handed to `TmSimulation::add_path`).
pub(crate) fn prefix_plan() -> Vec<(PrefixId, Vec<PeeringId>)> {
    vec![
        (PrefixId(0), vec![PeeringId(0), PeeringId(1), PeeringId(2), PeeringId(3)]),
        (PrefixId(1), vec![PeeringId(0)]),
        (PrefixId(2), vec![PeeringId(1)]),
        (PrefixId(3), vec![PeeringId(2)]),
        (PrefixId(4), vec![PeeringId(3)]),
    ]
}

/// The harness world's compile view — two PoPs, four peerings, the
/// anycast-plus-unicast prefix plan — exposed so the adversarial
/// searcher's grammar can be built over exactly the elements campaigns
/// run against.
pub fn harness_world_view() -> WorldView {
    WorldView::from_deployment(&build_world().deployment, prefix_plan())
}

/// Runs one campaign: compiles the spec, drives one shared BGP engine,
/// samples gated per-prefix reachability/latency onto three Traffic
/// Manager runs (painter / anycast / dns), and scores each. The guard
/// layer runs at [`GuardConfig::default`]; use
/// [`run_campaign_with_guard`] to vary it.
pub fn run_campaign(
    spec: &ScenarioSpec,
    timing: &ChaosTiming,
    seed: u64,
) -> Result<CampaignOutcome, String> {
    run_campaign_with_guard(spec, timing, seed, &GuardConfig::default())
}

/// [`run_campaign`] with an explicit guard-layer tuning for the
/// closed-loop strategy (quarantine, hysteresis, rollback — the knobs
/// auto-tuning sweeps vary). The open-loop strategies have no guards,
/// so only the `painter-closed-loop` scorecard and the learning stats
/// depend on `guard`.
pub fn run_campaign_with_guard(
    spec: &ScenarioSpec,
    timing: &ChaosTiming,
    seed: u64,
    guard: &GuardConfig,
) -> Result<CampaignOutcome, String> {
    let world = build_world();
    let plan = prefix_plan();
    let view = WorldView::from_deployment(&world.deployment, plan.clone());
    let schedule = Schedule::compile(spec, &view, seed)?;
    let first_fault = schedule.first_at().unwrap_or(SimTime::MAX);
    let horizon = SimTime::from_secs(timing.horizon_s);

    // --- The flight recorder: one sink shared by the injector, the
    // shared BGP engine, painter's Traffic Manager, the guard layer, and
    // the closed loop's plan installer. Emission is append-only (no RNG,
    // no event-queue effect), so recording never perturbs the campaign;
    // under `obs-off` the sink is a ZST and every emit vanishes.
    let sink = TraceSink::recording();
    let spans = trace_fault_spans(&schedule, &sink);

    // --- Shared control plane: announce everything, queue the chaos
    // events, let BGP converge through the warm-up.
    let dynamics = DynamicsConfig { proc_delay_ms: (30.0, 400.0), mrai_secs: (2.0, 8.0), seed };
    let mut engine = BgpEngine::new(&world.graph, &world.deployment, dynamics, SALT);
    engine.set_trace(sink.clone());
    for (prefix, peerings) in &plan {
        for &pe in peerings {
            engine.announce(SimTime::ZERO, *prefix, pe);
        }
    }
    program_bgp_traced(&schedule, &mut engine, &spans);
    engine.run_until(SimTime::from_secs(timing.warmup_s));

    // Converged base RTT per chaos tunnel (what a blackhole recovery
    // restores).
    let base: Vec<f64> = plan
        .iter()
        .map(|(prefix, _)| {
            let overhead = if prefix.0 == 0 { ANYCAST_OVERHEAD_MS } else { 0.0 };
            engine
                .current_rtt_ms(world.stub, world.stub_metro, *prefix)
                .map(|r| r + overhead)
                .unwrap_or(100.0)
        })
        .collect();

    // --- Sample BGP state once, gated by administrative data-plane
    // liveness: a route through a dead PoP blackholes immediately even
    // while its session waits out failure detection, and a blackholed
    // tunnel stays dark regardless of what BGP believes.
    // Half-open sampling [0, horizon): a control-plane change at exactly
    // the horizon cannot affect any in-horizon request, but reprogramming
    // a channel down there would drop its in-flight responses.
    let steps = (timing.horizon_s * 1000.0 / SAMPLE_MS) as usize;
    let mut dps = DataPlaneState::new(view.pops as usize, plan.len());
    let mut avail: Vec<Vec<Option<(PeeringId, f64)>>> = Vec::with_capacity(steps);
    // Bystander anycast ingresses, sampled per step for blast-radius
    // attribution. Pure reads of already-advanced engine state — the
    // sampling can never perturb the campaign — and skipped entirely
    // when no trace is being recorded.
    let mut bystander_rows: Vec<Vec<Option<PeeringId>>> = Vec::new();
    for step in 0..steps {
        let t = SimTime::from_ms(step as f64 * SAMPLE_MS);
        engine.run_until(t);
        dps.advance(&schedule, t);
        if sink.is_recording() {
            bystander_rows.push(
                world
                    .bystanders
                    .iter()
                    .map(|&b| {
                        engine
                            .current_path(b, PrefixId(0))
                            .filter(|(_, ingress)| {
                                !dps.pop_down(world.deployment.peering(*ingress).pop)
                            })
                            .map(|(_, ingress)| ingress)
                    })
                    .collect(),
            );
        }
        let row: Vec<Option<(PeeringId, f64)>> = plan
            .iter()
            .enumerate()
            .map(|(idx, (prefix, _))| {
                if dps.tunnel_down(idx) {
                    return None;
                }
                let overhead = if prefix.0 == 0 { ANYCAST_OVERHEAD_MS } else { 0.0 };
                engine
                    .current_path(world.stub, *prefix)
                    .filter(|(_, ingress)| !dps.pop_down(world.deployment.peering(*ingress).pop))
                    .and_then(|(_, ingress)| {
                        engine
                            .current_rtt_ms(world.stub, world.stub_metro, *prefix)
                            .map(|r| (ingress, r + overhead))
                    })
            })
            .collect();
        avail.push(row);
    }

    // --- Strategy 1: PAINTER — every tunnel, full fault programming.
    // This is the strategy whose Traffic Manager feeds the flight
    // recorder: a fault cursor walks the schedule alongside the sampled
    // grid so each channel reprogramming carries the causal id of the
    // fault that explains it (the other strategies' TMs replay the same
    // physics unrecorded).
    let painter = {
        let mut tm = TmSimulation::new(TmSimulationConfig {
            seed: derive_seed(seed, 1),
            ..Default::default()
        });
        tm.set_trace(sink.clone());
        let tunnels = add_all_paths(&mut tm, &world, &plan, &base);
        let targets = tm_targets(&tunnels, &base);
        program_tm_traced(&schedule, &mut tm, &targets, &spans);
        let mut cursor = FaultCursor::new(&schedule, &plan, &world.deployment, &spans);
        for (step, row) in avail.iter().enumerate() {
            let t = SimTime::from_ms(step as f64 * SAMPLE_MS);
            cursor.advance(t);
            for (idx, sample) in row.iter().enumerate() {
                match sample {
                    Some((_, rtt)) => {
                        tm.schedule_path_rtt_caused(t, tunnels[idx], *rtt, cursor.up_cause(idx))
                    }
                    None => tm.schedule_path_down_caused(t, tunnels[idx], cursor.down_cause(idx)),
                }
            }
        }
        drain_and_score(&mut tm, &spec.name, "painter", horizon, first_fault)
    };

    // --- Strategy 2: anycast — one tunnel; recovery is BGP
    // reconvergence onto the surviving ingress.
    let anycast = {
        let mut tm = TmSimulation::new(TmSimulationConfig {
            seed: derive_seed(seed, 2),
            ..Default::default()
        });
        let pop = world.deployment.peering(plan[0].1[0]).pop;
        let tunnel = tm.add_path(plan[0].0, pop, base[0]);
        program_tm(&schedule, &mut tm, &[TmTarget { tunnel, base_rtt_ms: base[0] }]);
        for (step, row) in avail.iter().enumerate() {
            let t = SimTime::from_ms(step as f64 * SAMPLE_MS);
            match row[0] {
                Some((_, rtt)) => tm.schedule_path_rtt(t, tunnel, rtt),
                None => tm.schedule_path_down(t, tunnel),
            }
        }
        drain_and_score(&mut tm, &spec.name, "anycast", horizon, first_fault)
    };

    // --- Strategy 3: DNS — all unicast tunnels exist, but only the
    // currently-resolved record's tunnel is usable; the (health-checked)
    // resolver re-picks the lowest-RTT reachable prefix only at TTL
    // boundaries. Tunnel liveness flows through the sampled schedule, so
    // only the latency/loss/probe overlays are injected directly.
    let dns = {
        let mut tm = TmSimulation::new(TmSimulationConfig {
            seed: derive_seed(seed, 3),
            ..Default::default()
        });
        let tunnels = add_all_paths(&mut tm, &world, &plan, &base);
        let targets = tm_targets(&tunnels, &base);
        program_overlays(&schedule, &mut tm, &targets);
        let ttl_ns = SimTime::from_secs(timing.dns_ttl_s).as_nanos().max(1);
        let mut resolved: Option<usize> = None;
        let mut window = u64::MAX;
        for (step, row) in avail.iter().enumerate() {
            let t = SimTime::from_ms(step as f64 * SAMPLE_MS);
            let w = t.as_nanos() / ttl_ns;
            if w != window {
                window = w;
                // Anycast (index 0) is not a DNS answer; an all-dark
                // fleet keeps the stale record.
                let best = row
                    .iter()
                    .enumerate()
                    .skip(1)
                    .filter_map(|(idx, s)| s.map(|(_, rtt)| (idx, rtt)))
                    .min_by(|a, b| a.1.total_cmp(&b.1));
                if let Some((idx, _)) = best {
                    resolved = Some(idx);
                }
            }
            for (idx, sample) in row.iter().enumerate() {
                match (Some(idx) == resolved, sample) {
                    (true, Some((_, rtt))) => tm.schedule_path_rtt(t, tunnels[idx], *rtt),
                    _ => tm.schedule_path_down(t, tunnels[idx]),
                }
            }
        }
        drain_and_score(&mut tm, &spec.name, "dns", horizon, first_fault)
    };

    // --- Strategy 4: the guarded closed loop, run live against the same
    // schedule. Its Traffic Manager deliberately shares painter's seed:
    // the two runs form a paired experiment, identical until a repair
    // actually commits.
    let (closed_loop, learning) = run_closed_loop(
        &world,
        &plan,
        &engine,
        &schedule,
        timing,
        seed,
        guard,
        &base,
        &avail,
        horizon,
        first_fault,
        &spec.name,
        &sink,
    );

    // --- Fold the recorded stream into per-fault incident records.
    let events = sink.events();
    let blast = bystander_blast(&schedule, &bystander_rows);
    let incidents = attribute(spec, &schedule, &events, &blast);

    Ok(CampaignOutcome {
        schedule,
        spec_json: spec.to_json(),
        painter,
        anycast,
        dns,
        closed_loop,
        learning,
        incidents,
        events,
    })
}

/// Walks the schedule alongside the sampling grid, tracking which fault
/// most recently explains each tunnel's loss (or return) of sampled
/// reachability, so per-cell channel reprogramming can carry the
/// responsible fault's span id without re-deriving BGP propagation.
/// Each injection is examined exactly once across the whole walk; with
/// an inert sink every span is `NONE` and the cursor hands out `NONE`.
struct FaultCursor<'a> {
    injections: &'a [Injection],
    plan: &'a [(PrefixId, Vec<PeeringId>)],
    deployment: &'a Deployment,
    spans: &'a [TraceId],
    next: usize,
    down: Vec<TraceId>,
    up: Vec<TraceId>,
}

impl<'a> FaultCursor<'a> {
    fn new(
        schedule: &'a Schedule,
        plan: &'a [(PrefixId, Vec<PeeringId>)],
        deployment: &'a Deployment,
        spans: &'a [TraceId],
    ) -> FaultCursor<'a> {
        FaultCursor {
            injections: schedule.injections(),
            plan,
            deployment,
            spans,
            next: 0,
            down: vec![TraceId::NONE; plan.len()],
            up: vec![TraceId::NONE; plan.len()],
        }
    }

    /// Consumes every injection at or before `t`, updating which fault
    /// last pushed each tunnel down (or brought it back).
    fn advance(&mut self, t: SimTime) {
        while let Some(inj) = self.injections.get(self.next) {
            if inj.at > t {
                break;
            }
            self.next += 1;
            let span = self.spans.get(inj.fault).copied().unwrap_or(TraceId::NONE);
            if span.is_none() {
                continue;
            }
            match inj.event {
                FaultEvent::SessionDown { peering } => self.mark_peering(peering, span, true),
                FaultEvent::SessionUp { peering } => self.mark_peering(peering, span, false),
                FaultEvent::Withdraw { prefix, .. } => self.mark_prefix(prefix, span, true),
                FaultEvent::Announce { prefix, .. } => self.mark_prefix(prefix, span, false),
                FaultEvent::PopDown { pop } => self.mark_pop(pop, span, true),
                FaultEvent::PopUp { pop } => self.mark_pop(pop, span, false),
                FaultEvent::TunnelDown { tunnel } => self.mark_tunnel(tunnel, span, true),
                FaultEvent::TunnelUp { tunnel } => self.mark_tunnel(tunnel, span, false),
                _ => {}
            }
        }
    }

    fn mark_tunnel(&mut self, idx: usize, span: TraceId, down: bool) {
        let side = if down { &mut self.down } else { &mut self.up };
        if let Some(slot) = side.get_mut(idx) {
            *slot = span;
        }
    }

    fn mark_prefix(&mut self, prefix: PrefixId, span: TraceId, down: bool) {
        if let Some(idx) = self.plan.iter().position(|(p, _)| *p == prefix) {
            self.mark_tunnel(idx, span, down);
        }
    }

    fn mark_peering(&mut self, peering: PeeringId, span: TraceId, down: bool) {
        for idx in 0..self.plan.len() {
            if self.plan[idx].1.contains(&peering) {
                self.mark_tunnel(idx, span, down);
            }
        }
    }

    fn mark_pop(&mut self, pop: painter_topology::PopId, span: TraceId, down: bool) {
        for idx in 0..self.plan.len() {
            if self.plan[idx].1.iter().any(|pe| self.deployment.peering(*pe).pop == pop) {
                self.mark_tunnel(idx, span, down);
            }
        }
    }

    fn down_cause(&self, idx: usize) -> TraceId {
        self.down.get(idx).copied().unwrap_or(TraceId::NONE)
    }

    fn up_cause(&self, idx: usize) -> TraceId {
        self.up.get(idx).copied().unwrap_or(TraceId::NONE)
    }
}

/// Per-fault blast radius over the sampled bystander ingresses: a
/// bystander counts as affected by fault `f` if its anycast ingress at
/// any step inside `f`'s injection window differs from the step just
/// before the window opened. Empty when bystanders were not sampled
/// (`obs-off`).
fn bystander_blast(schedule: &Schedule, rows: &[Vec<Option<PeeringId>>]) -> Vec<u64> {
    let faults = schedule.fault_count();
    let mut out = vec![0u64; faults];
    if rows.is_empty() {
        return out;
    }
    let last_step = rows.len() - 1;
    for (f, slot) in out.iter_mut().enumerate() {
        let mut first: Option<SimTime> = None;
        let mut last: Option<SimTime> = None;
        for inj in schedule.injections().iter().filter(|i| i.fault == f) {
            if first.is_none() {
                first = Some(inj.at);
            }
            last = Some(inj.at);
        }
        let (Some(first), Some(last)) = (first, last) else { continue };
        let s0 = ((first.as_ms() / SAMPLE_MS) as usize).min(last_step);
        let s1 = ((last.as_ms() / SAMPLE_MS) as usize + 1).min(last_step);
        let baseline = s0.saturating_sub(1);
        for (b, base) in rows[baseline].iter().enumerate() {
            if (s0..=s1).any(|s| rows[s][b] != *base) {
                *slot += 1;
            }
        }
    }
    out
}

/// Runs the advertise→measure→learn loop *inside* the campaign, guarded
/// by `painter_core::guard`, and scores the resulting data plane as the
/// `painter-closed-loop` strategy.
///
/// The loop starts from the fixed plan and only ever *grows* it: when a
/// unicast prefix stays dark for [`DARK_ITERS`] iterations, the loop
/// marks its advertised ingresses unreachable and proposes announcing
/// the prefix via the best believed-alive peering. Proposals must clear
/// the hysteresis gate (sustained for K iterations), survive the
/// rollback guard's backoff window, and are installed through the
/// rate-limited installer. Post-install health that regresses beyond the
/// guardrails triggers an automatic revert to the last-known-good plan.
///
/// Repair announcements run on a dedicated engine carrying only the
/// installer's state (plus session/leak faults, which govern whether a
/// repair survives). The closed loop's tunnel row is the fixed plan's
/// sampled row with repair reachability overlaid onto dark cells — the
/// union of the two announcement sets' reachability, with the fixed
/// plan's path preferred when both are alive. Every step is a pure
/// function of `(spec, seed)`, so same-seed replays stay byte-identical.
#[allow(clippy::too_many_arguments)]
fn run_closed_loop(
    world: &HarnessWorld,
    plan: &[(PrefixId, Vec<PeeringId>)],
    fixed_engine: &BgpEngine,
    schedule: &Schedule,
    timing: &ChaosTiming,
    seed: u64,
    guard: &GuardConfig,
    base: &[f64],
    shared: &[Vec<Option<(PeeringId, f64)>>],
    horizon: SimTime,
    first_fault: SimTime,
    campaign: &str,
    sink: &TraceSink,
) -> (Scorecard, LearningStats) {
    let ug = UgId(0);
    let mut fixed = AdvertConfig::new();
    for (prefix, peerings) in plan {
        for &pe in peerings {
            fixed.add(*prefix, pe);
        }
    }

    // The orchestrator's view of the harness world: one UG (the stub)
    // with every deployment peering as a candidate at its converged base
    // RTT. D_reuse is widened so the London peerings stay eligible as
    // repair targets for a New York UG.
    let peering_pop: Vec<usize> = world.deployment.peerings().iter().map(|p| p.pop.idx()).collect();
    let inputs = OrchestratorInputs {
        ugs: vec![UgView {
            id: ug,
            metro: world.stub_metro,
            weight: 1.0,
            anycast_ms: base[0],
            candidates: world
                .deployment
                .peerings()
                .iter()
                .map(|p| (p.id, base[p.id.idx() + 1]))
                .collect(),
        }],
        // Great-circle NY→{NY, London}; only the D_reuse comparison
        // consumes these.
        ug_pop_km: vec![vec![0.0, 5570.0]],
        peering_count: peering_pop.len(),
        capacities: None,
        peering_pop,
    };
    let config = OrchestratorConfig {
        prefix_budget: plan.len(),
        d_reuse_km: 10_000.0,
        threads: Some(1),
        ..Default::default()
    };
    let mut orch = Orchestrator::new(inputs, config);

    let obs = painter_obs::Registry::with_event_capacity(timing.event_capacity);
    let mut quarantine = QuarantineBuffer::with_obs(guard.quarantine, obs.clone());
    let mut hysteresis = PlanHysteresis::with_obs(guard.hysteresis, obs.clone());
    let mut rollback = RollbackGuard::with_obs(guard.rollback, obs.clone());
    quarantine.set_trace(sink.clone());
    hysteresis.set_trace(sink.clone());
    rollback.set_trace(sink.clone());
    let plan_trace = sink.scoped("plan");

    // The repair engine carries only installer-announced state, plus the
    // session and leak faults that decide whether a repair survives.
    // (PoP outages gate through the shared data-plane state; the fixed
    // plan's own announce/withdraw events belong to the fixed engine.)
    let dynamics = DynamicsConfig {
        proc_delay_ms: (30.0, 400.0),
        mrai_secs: (2.0, 8.0),
        seed: derive_seed(seed, 4),
    };
    let mut repair_engine = BgpEngine::new(&world.graph, &world.deployment, dynamics, SALT);
    for inj in schedule.injections() {
        match inj.event {
            FaultEvent::SessionDown { peering } => repair_engine.session_down(inj.at, peering),
            FaultEvent::SessionUp { peering } => repair_engine.session_up(inj.at, peering),
            FaultEvent::LeakStart { peering } => repair_engine.leak_start(inj.at, peering),
            FaultEvent::LeakEnd { peering } => repair_engine.leak_end(inj.at, peering),
            _ => {}
        }
    }

    let hold_down = SimTime::from_secs(2.0);
    let iter_len = SimTime::from_secs(ITER_SECS);
    let mut installed = fixed.clone();
    let mut dark_iters = vec![0u32; plan.len()];
    let mut rows: Vec<Vec<Option<(PeeringId, f64)>>> = Vec::with_capacity(shared.len());
    let mut stats = LearningStats::default();
    let mut next_iter = SimTime::from_secs(timing.warmup_s);
    let mut window_start_step = 0usize;
    let mut probation = false;
    let mut baseline_health: Option<HealthSample> = None;

    let mut dps = DataPlaneState::new(world.deployment.pops().len(), plan.len());
    for (step, shared_row) in shared.iter().enumerate() {
        let t = SimTime::from_ms(step as f64 * SAMPLE_MS);
        repair_engine.run_until(t);
        dps.advance(schedule, t);

        // Fixed-plan reachability first; repair overlay only onto dark
        // cells, gated by the same administrative data-plane liveness.
        let row: Vec<Option<(PeeringId, f64)>> = plan
            .iter()
            .enumerate()
            .map(|(idx, (prefix, _))| {
                if dps.tunnel_down(idx) {
                    return None;
                }
                shared_row[idx].or_else(|| {
                    repair_engine
                        .current_path(world.stub, *prefix)
                        .filter(|(_, ingress)| {
                            !dps.pop_down(world.deployment.peering(*ingress).pop)
                        })
                        .and_then(|(_, ingress)| {
                            repair_engine
                                .current_rtt_ms(world.stub, world.stub_metro, *prefix)
                                .map(|r| (ingress, r))
                        })
                })
            })
            .collect();
        rows.push(row);

        if t < next_iter {
            continue;
        }
        next_iter += iter_len;
        stats.iterations += 1;
        let latest = rows.last().expect("row just pushed").clone();

        // (1) Churn-flag the advertised ingresses of any prefix whose
        // control-plane update volume spiked this window.
        let window_start = t.saturating_sub(iter_len);
        for (prefix, _) in plan {
            let updates = fixed_engine.updates_in_window(*prefix, window_start, t)
                + repair_engine.updates_in_window(*prefix, window_start, t);
            if updates > CHURN_UPDATES {
                for &pe in installed.peerings_of(*prefix) {
                    quarantine.flag_churn(pe, t);
                }
            }
        }

        // (2) Measure: one observation per in-plan prefix, screened
        // through the quarantine before the learner sees it.
        let fresh = Observations {
            landed: plan
                .iter()
                .enumerate()
                .map(|(idx, (prefix, _))| (ug, *prefix, latest[idx]))
                .collect(),
        };
        stats.samples_offered += fresh.landed.len() as u64;
        orch.learn_guarded(&installed, &fresh, &mut quarantine, t);

        // (3) Post-install probation: regression beyond the guardrails
        // reverts to the last-known-good plan and arms the backoff; a
        // healthy window proves the new plan good.
        let health = health_of(&rows[window_start_step..]);
        let mut reverted = false;
        if probation {
            if let Some(good) = rollback.check(t, &health) {
                let ops = revert_plan(&installed, &good, hold_down);
                stats.install_ops += ops.len() as u64;
                apply_to_engine(&ops, &mut repair_engine, t);
                installed = good;
                reverted = true;
                plan_trace.emit(
                    t.as_nanos(),
                    rollback.last_rollback_trace(),
                    TraceKind::PlanRevert { pairs: installed.pair_count() as u32 },
                );
            } else {
                rollback.record_good(&installed, health);
                baseline_health = Some(health);
            }
            probation = false;
        } else {
            // Baseline ratchet: while no install is on probation, keep
            // the last-known-good snapshot fresh as long as health holds
            // up — so the snapshot captures the converged pre-fault plan
            // and freezes the moment a fault drags health down.
            let holds_up =
                baseline_health.as_ref().map(|b| !rollback.regressed(b, &health)).unwrap_or(true);
            if holds_up {
                rollback.record_good(&installed, health);
                baseline_health = Some(health);
            }
        }

        // (4) Track sustained darkness and mark the believed-dead
        // ingresses (admitted landings clear the marks via `learn`).
        for idx in 1..plan.len() {
            if latest[idx].is_none() {
                dark_iters[idx] += 1;
                if dark_iters[idx] >= DARK_ITERS {
                    for &pe in plan[idx].1.iter() {
                        orch.model.mark_unreachable(ug, pe);
                    }
                }
            } else {
                dark_iters[idx] = 0;
            }
        }

        // (5) Propose: grow the installed plan with one repair pair per
        // sustained-dark unicast prefix, through hysteresis and the
        // rollback guard's backoff gate.
        if !reverted {
            let mut candidate = installed.clone();
            for idx in 1..plan.len() {
                if dark_iters[idx] >= DARK_ITERS {
                    let prefix = plan[idx].0;
                    let pick = orch.inputs.ugs[0]
                        .candidates
                        .iter()
                        .filter(|(pe, _)| !orch.model.is_unreachable(ug, *pe))
                        .filter(|(pe, _)| !candidate.contains(prefix, *pe))
                        .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                    if let Some(&(pe, _)) = pick {
                        candidate.add(prefix, pe);
                    }
                }
            }
            let new_pairs = (candidate.pair_count() - installed.pair_count()) as f64;
            let evaluator = ConfigEvaluator::new(&orch.inputs, &orch.model);
            let modeled_delta = evaluator.benefit(&candidate) - evaluator.benefit(&installed);
            let delta = modeled_delta + REPAIR_URGENCY * new_pairs;
            if let Some(commit) = hysteresis.consider_at(&candidate, delta, t) {
                if commit != installed && rollback.can_attempt(t) {
                    let ops = painter_core::plan(diff(&installed, &commit), hold_down);
                    stats.install_ops += ops.len() as u64;
                    apply_to_engine(&ops, &mut repair_engine, t);
                    installed = commit;
                    probation = true;
                    let commit_ev = plan_trace.emit(
                        t.as_nanos(),
                        hysteresis.last_commit_trace(),
                        TraceKind::PlanCommit { pairs: installed.pair_count() as u32 },
                    );
                    plan_trace.emit(t.as_nanos(), commit_ev, TraceKind::ProbationStart);
                }
            }
        }
        window_start_step = step + 1;
    }

    // End-of-run bookkeeping.
    stats.samples_admitted = quarantine.admitted_total;
    stats.samples_quarantined = quarantine.quarantined_total;
    stats.samples_discarded = quarantine.discarded_total;
    stats.quarantine_held = quarantine.held_len() as u64;
    stats.hysteresis_commits = hysteresis.commits_total;
    stats.hysteresis_resets = hysteresis.resets_total;
    stats.rollbacks = rollback.rollbacks_total;
    stats.plan_churn_rate = stats.install_ops as f64 / stats.iterations.max(1) as f64;
    stats.final_pairs = installed.pair_count() as u64;
    stats.dominance_learned = orch.model.dominance_count() as u64;
    stats.unreachable_marks = orch.model.unreachable_count() as u64;
    stats.events_dropped = obs.counter("obs.events_dropped").get();

    // Compliance-inference skew vs the fixed-plan baseline: the loop's
    // end-state believed ingresses against every landing the fixed plan
    // actually witnessed.
    let mut witnessed = ObservedReachability::new();
    for row in shared {
        for cell in row.iter().flatten() {
            witnessed.note(ug, cell.0);
        }
    }
    let believed: Vec<Vec<PeeringId>> = vec![orch.inputs.ugs[0]
        .candidates
        .iter()
        .map(|(p, _)| *p)
        .filter(|p| !orch.model.is_unreachable(ug, *p))
        .collect()];
    let (miss, spurious) = witnessed.skew(&believed, &world.deployment);
    stats.compliance_miss_rate = miss;
    stats.compliance_spurious_rate = spurious;

    // Score the closed loop's data plane on painter's TM seed (paired
    // experiment: bit-identical rows ⇒ bit-identical scorecards).
    let mut tm =
        TmSimulation::new(TmSimulationConfig { seed: derive_seed(seed, 1), ..Default::default() });
    let tunnels = add_all_paths(&mut tm, world, plan, base);
    let targets = tm_targets(&tunnels, base);
    program_tm(schedule, &mut tm, &targets);
    for (step, row) in rows.iter().enumerate() {
        let t = SimTime::from_ms(step as f64 * SAMPLE_MS);
        for (idx, sample) in row.iter().enumerate() {
            match sample {
                Some((_, rtt)) => tm.schedule_path_rtt(t, tunnels[idx], *rtt),
                None => tm.schedule_path_down(t, tunnels[idx]),
            }
        }
    }
    let scorecard = drain_and_score(&mut tm, campaign, "painter-closed-loop", horizon, first_fault);
    (scorecard, stats)
}

/// Availability and p95 latency over a window of sampled tunnel rows.
fn health_of(rows: &[Vec<Option<(PeeringId, f64)>>]) -> HealthSample {
    let mut alive = 0usize;
    let mut total = 0usize;
    let mut rtts: Vec<f64> = Vec::new();
    for row in rows {
        for cell in row {
            total += 1;
            if let Some((_, rtt)) = cell {
                alive += 1;
                rtts.push(*rtt);
            }
        }
    }
    let availability = if total == 0 { 1.0 } else { alive as f64 / total as f64 };
    rtts.sort_by(f64::total_cmp);
    let p95 = if rtts.is_empty() { 0.0 } else { rtts[(rtts.len() - 1) * 95 / 100] };
    HealthSample { availability, p95_latency_ms: p95 }
}

/// Runs the sim one second past the horizon so responses to requests
/// sent near the end can land, then scores only the in-horizon
/// records/switches. Without the drain a strategy resting on a
/// long-RTT path would book its final in-flight window as a spurious
/// trailing outage.
fn drain_and_score(
    tm: &mut TmSimulation,
    campaign: &str,
    strategy: &str,
    horizon: SimTime,
    first_fault: SimTime,
) -> Scorecard {
    tm.run(SimTime::from_nanos(horizon.as_nanos() + SimTime::from_secs(1.0).as_nanos()));
    let records: Vec<_> = tm.records().iter().filter(|r| r.sent <= horizon).copied().collect();
    let switches: Vec<_> = tm.switch_log().iter().filter(|s| s.at <= horizon).copied().collect();
    Scorecard::from_records(campaign, strategy, &records, &switches, first_fault)
}

fn add_all_paths(
    tm: &mut TmSimulation,
    world: &HarnessWorld,
    plan: &[(PrefixId, Vec<PeeringId>)],
    base: &[f64],
) -> Vec<TunnelId> {
    plan.iter()
        .enumerate()
        .map(|(idx, (prefix, peerings))| {
            let pop = world.deployment.peering(peerings[0]).pop;
            tm.add_path(*prefix, pop, base[idx])
        })
        .collect()
}

fn tm_targets(tunnels: &[TunnelId], base: &[f64]) -> Vec<TmTarget> {
    tunnels
        .iter()
        .zip(base)
        .map(|(&tunnel, &base_rtt_ms)| TmTarget { tunnel, base_rtt_ms })
        .collect()
}

/// Injects only the overlay faults (latency, bursty loss, probe-fleet
/// loss) — for strategies whose tunnel liveness is already authored by
/// the gated sampling loop, where `program_tm`'s blackhole recovery
/// events would wrongly revive channels the strategy may not use.
fn program_overlays(schedule: &Schedule, tm: &mut TmSimulation, targets: &[TmTarget]) {
    for inj in schedule.injections() {
        let at = inj.at;
        match inj.event {
            FaultEvent::LatencyAdd { tunnel, add_ms } => {
                if let Some(t) = targets.get(tunnel) {
                    tm.schedule_path_extra_latency(at, t.tunnel, add_ms);
                }
            }
            FaultEvent::LatencyClear { tunnel, .. } => {
                if let Some(t) = targets.get(tunnel) {
                    tm.schedule_path_extra_latency(at, t.tunnel, 0.0);
                }
            }
            FaultEvent::BurstStart { tunnel, p_enter_bad, p_leave_bad, loss_good, loss_bad } => {
                if let Some(t) = targets.get(tunnel) {
                    tm.schedule_path_burst(
                        at,
                        t.tunnel,
                        Some((p_enter_bad, p_leave_bad, loss_good, loss_bad)),
                    );
                }
            }
            FaultEvent::BurstEnd { tunnel } => {
                if let Some(t) = targets.get(tunnel) {
                    tm.schedule_path_burst(at, t.tunnel, None);
                }
            }
            FaultEvent::ProbeLoss { fraction } => tm.schedule_probe_loss(at, fraction),
            FaultEvent::ProbeRestore => tm.schedule_probe_loss(at, 0.0),
            _ => {}
        }
    }
}

/// The standard three-campaign suite, timed against `timing` so the
/// first fault always lands mid-TTL (DNS's worst case).
pub fn standard_suite(timing: &ChaosTiming) -> Vec<ScenarioSpec> {
    let t0 = timing.fault_at_s;
    let h = timing.horizon_s;
    let outage = (h - t0).min(30.0);
    vec![
        // Fig. 10 proper: one PoP dies; sessions notice on their own
        // failure-detection timers.
        ScenarioSpec::new("pop-outage", h).fault(
            FaultSpec::new(
                "popA",
                FaultKind::PopOutage { detection_spread_ms: 2100.0 },
                Target::Pop(0),
            )
            .at(t0)
            .lasting(outage),
        ),
        // Control-plane churn without a data-plane disaster: a flapping
        // session plus a withdrawal storm on its PoP neighbor.
        ScenarioSpec::new("bgp-churn", h)
            .fault(
                FaultSpec::new("flap0", FaultKind::SessionReset, Target::Peering(0))
                    .at(t0)
                    .lasting(3.0)
                    .recurring(10.0, 2, 2.0),
            )
            .fault(
                FaultSpec::new(
                    "storm1",
                    FaultKind::WithdrawStorm { spread_ms: 700.0 },
                    Target::Peering(1),
                )
                .at(t0 + 5.0)
                .lasting(6.0),
            ),
        // The compound case: the PoP outage *plus* degraded survivors
        // (latency spike and bursty loss at PoP-B) *plus* a darkened
        // probe fleet — every plane faulted at once.
        ScenarioSpec::new("multi-fault", h)
            .fault(
                FaultSpec::new(
                    "popA",
                    FaultKind::PopOutage { detection_spread_ms: 2100.0 },
                    Target::Pop(0),
                )
                .at(t0)
                .lasting(outage),
            )
            .fault(
                FaultSpec::new(
                    "spike-b1",
                    FaultKind::LatencySpike { add_ms: 35.0 },
                    Target::Tunnel(3),
                )
                .at(t0 + 2.0)
                .lasting(10.0),
            )
            .fault(
                FaultSpec::new(
                    "burst-b2",
                    FaultKind::BurstyLoss {
                        p_enter_bad: 0.05,
                        p_leave_bad: 0.25,
                        loss_good: 0.0,
                        loss_bad: 0.7,
                    },
                    Target::Tunnel(4),
                )
                .at(t0 + 2.0)
                .lasting(10.0),
            )
            .fault(
                FaultSpec::new("fleet", FaultKind::ProbeFleetLoss { fraction: 0.3 }, Target::Fleet)
                    .at(t0)
                    .lasting(20.0),
            ),
    ]
}

/// Runs the standard suite at a scale and seed.
pub fn run_suite(scale: Scale, seed: u64) -> Result<Vec<CampaignOutcome>, String> {
    let timing = ChaosTiming::for_scale(scale);
    standard_suite(&timing).iter().map(|spec| run_campaign(spec, &timing, seed)).collect()
}

/// The whole suite as flat `chaos.*` report sections (provenance plus
/// three scorecards per campaign), ready to push into a `RunReport`.
pub fn suite_sections(scale: Scale, seed: u64) -> Result<Vec<Section>, String> {
    Ok(run_suite(scale, seed)?.iter().flat_map(|o| o.sections()).collect())
}

/// One cell of the detection-parameter sweep: a TM tuning against a
/// [`FaultKind::LinkBlackhole`] campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    pub probe_interval_ms: f64,
    pub timeout_factor: f64,
    pub dead_rto_ms: f64,
    /// Fault injection → first failover switch (ms); `-1` if the fault
    /// was never detected. Driven by the timeout factor and the send
    /// rate (the fault hits the active path).
    pub detection_ms: f64,
    /// Blackhole lift → fail-back onto the recovered primary (ms); `-1`
    /// if the TM never came back. Driven by the probe plane: a dead
    /// tunnel is only ever heard from again via its probes.
    pub recovery_ms: f64,
    /// Switches outside the fault window (and its fail-back grace):
    /// probes crying wolf.
    pub false_failovers: u64,
    pub availability: f64,
}

impl SweepPoint {
    /// Deterministic, filename-safe cell tag:
    /// `p<probe-ms>_t<factor×100>_d<rto-ms>`.
    pub fn tag(&self) -> String {
        format!(
            "p{}_t{}_d{}",
            self.probe_interval_ms as u64,
            (self.timeout_factor * 100.0).round() as u64,
            self.dead_rto_ms as u64
        )
    }
}

/// Sweeps the Traffic Manager's failure-detection knobs (probe interval,
/// timeout factor, dead-path RTO floor) against a `LinkBlackhole`
/// campaign on the primary tunnel, mapping the detection-latency vs
/// false-failover tradeoff.
///
/// A link blackhole is the gray-failure shape: BGP never reacts, so the
/// control plane is deliberately absent here and every channel sits at
/// its base RTT — the sweep isolates the probe plane. All cells share
/// one TM seed (paired runs), so differences between cells are the
/// knobs' doing alone.
pub fn run_sweep(timing: &ChaosTiming, seed: u64) -> Result<(String, Vec<SweepPoint>), String> {
    // Representative converged RTTs: anycast, two near unicast paths,
    // two far ones. The blackhole hits tunnel 1 — the path the TM rides.
    const BASE: [f64; 5] = [10.0, 6.0, 12.0, 70.0, 75.0];
    const PROBE_MS: [f64; 3] = [25.0, 50.0, 100.0];
    const TIMEOUT_FACTOR: [f64; 3] = [1.15, 1.3, 2.0];
    const DEAD_RTO_MS: [f64; 3] = [100.0, 300.0, 900.0];
    const FAULT_SECS: f64 = 15.0;
    /// Post-recovery window where fail-back switches are legitimate.
    const FAILBACK_GRACE_S: f64 = 5.0;

    let world = build_world();
    let plan = prefix_plan();
    let view = WorldView::from_deployment(&world.deployment, plan.clone());
    let spec = ScenarioSpec::new("blackhole-sweep", timing.horizon_s).fault(
        FaultSpec::new("bh1", FaultKind::LinkBlackhole, Target::Tunnel(1))
            .at(timing.fault_at_s)
            .lasting(FAULT_SECS),
    );
    let schedule = Schedule::compile(&spec, &view, seed)?;
    let fault_at = schedule.first_at().ok_or("sweep schedule has no injections")?;
    let fault_end = fault_at + SimTime::from_secs(FAULT_SECS);
    let grace_end = fault_end + SimTime::from_secs(FAILBACK_GRACE_S);
    let horizon = SimTime::from_secs(timing.horizon_s);

    let mut points = Vec::new();
    for &probe_interval_ms in &PROBE_MS {
        for &timeout_factor in &TIMEOUT_FACTOR {
            for &dead_rto_ms in &DEAD_RTO_MS {
                let mut config = TmSimulationConfig {
                    seed: derive_seed(seed, 5),
                    probe_interval_ms,
                    ..Default::default()
                };
                config.edge.timeout_factor = timeout_factor;
                config.edge.dead_rto_ms = dead_rto_ms;
                let mut tm = TmSimulation::new(config);
                let tunnels: Vec<TunnelId> = plan
                    .iter()
                    .enumerate()
                    .map(|(idx, (prefix, peerings))| {
                        let pop = world.deployment.peering(peerings[0]).pop;
                        tm.add_path(*prefix, pop, BASE[idx])
                    })
                    .collect();
                let targets: Vec<TmTarget> = tunnels
                    .iter()
                    .zip(BASE)
                    .map(|(&tunnel, base_rtt_ms)| TmTarget { tunnel, base_rtt_ms })
                    .collect();
                program_tm(&schedule, &mut tm, &targets);
                tm.run(horizon + SimTime::from_secs(1.0));

                let detection_ms = tm
                    .switch_log()
                    .iter()
                    .find(|s| s.at >= fault_at)
                    .map(|s| (s.at - fault_at).as_ms())
                    .unwrap_or(-1.0);
                let faulted = plan[1].0;
                let recovery_ms = tm
                    .switch_log()
                    .iter()
                    .find(|s| s.at >= fault_end && s.to == faulted)
                    .map(|s| (s.at - fault_end).as_ms())
                    .unwrap_or(-1.0);
                // Ignore the initial pick (t=0) and anything after the
                // horizon; a switch while no fault is live is a false
                // failover.
                let false_failovers = tm
                    .switch_log()
                    .iter()
                    .filter(|s| s.at > SimTime::from_secs(1.0) && s.at <= horizon)
                    .filter(|s| s.at < fault_at || s.at > grace_end)
                    .count() as u64;
                let records: Vec<_> = tm.records().iter().filter(|r| r.sent <= horizon).collect();
                let completed = records.iter().filter(|r| r.completed.is_some()).count();
                let availability =
                    if records.is_empty() { 1.0 } else { completed as f64 / records.len() as f64 };
                points.push(SweepPoint {
                    probe_interval_ms,
                    timeout_factor,
                    dead_rto_ms,
                    detection_ms,
                    recovery_ms,
                    false_failovers,
                    availability,
                });
            }
        }
    }
    Ok((spec.to_json(), points))
}

/// The sweep as `chaos.sweep.*` report sections: a provenance header,
/// one section per cell, and a `(detection_ms, false_failovers)`
/// tradeoff series.
pub fn sweep_sections(scale: Scale, seed: u64) -> Result<Vec<Section>, String> {
    let timing = ChaosTiming::for_scale(scale);
    let (spec_json, points) = run_sweep(&timing, seed)?;
    let mut out = Vec::with_capacity(points.len() + 2);
    out.push(
        Section::new("chaos.sweep.config")
            .field("seed", seed)
            .field("cells", points.len())
            .field("spec", spec_json.as_str()),
    );
    for p in &points {
        out.push(
            Section::new(format!("chaos.sweep.{}", p.tag()))
                .field("probe_interval_ms", p.probe_interval_ms)
                .field("timeout_factor", p.timeout_factor)
                .field("dead_rto_ms", p.dead_rto_ms)
                .field("detection_ms", p.detection_ms)
                .field("recovery_ms", p.recovery_ms)
                .field("false_failovers", p.false_failovers)
                .field("availability", p.availability),
        );
    }
    let tradeoff: Vec<(f64, f64)> =
        points.iter().map(|p| (p.detection_ms, p.false_failovers as f64)).collect();
    out.push(Section::new("chaos.sweep.tradeoff").field("points", tradeoff));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop_outage() -> (ScenarioSpec, ChaosTiming) {
        let timing = ChaosTiming::for_scale(Scale::Test);
        let spec = standard_suite(&timing).remove(0);
        (spec, timing)
    }

    #[test]
    fn pop_outage_orders_painter_anycast_dns() {
        let (spec, timing) = pop_outage();
        let out = run_campaign(&spec, &timing, 1).expect("campaign");
        // PAINTER recovers on the probe timescale; anycast waits for
        // BGP; DNS waits for the 40 s TTL boundary (fault at 22 s).
        let p = out.painter.worst_ttr_ms();
        let a = out.anycast.worst_ttr_ms();
        let d = out.dns.worst_ttr_ms();
        assert!(p < 1_000.0, "painter ttr {p} ms");
        assert!(a > p, "anycast {a} ms must be slower than painter {p} ms");
        assert!(d > a, "dns {d} ms must be slower than anycast {a} ms");
        assert!(d > 10_000.0 && d < 25_000.0, "dns waits out the TTL, got {d} ms");
        assert_eq!(out.dns.unrecovered, 0, "dns must recover at the boundary");
        // Everyone loses some requests; painter loses the fewest.
        assert!(out.painter.availability() > out.anycast.availability());
        assert!(out.anycast.availability() > out.dns.availability());
    }

    #[test]
    fn default_guard_config_reproduces_the_unparameterized_campaign() {
        // GuardConfig lifted the guard constants out of this module; the
        // default must reproduce the pre-GuardConfig closed loop down to
        // the last byte of every section.
        let (spec, timing) = pop_outage();
        let plain = run_campaign(&spec, &timing, 1).expect("campaign");
        let explicit =
            run_campaign_with_guard(&spec, &timing, 1, &GuardConfig::default()).expect("campaign");
        assert_eq!(plain.sections(), explicit.sections());
        // And the knobs genuinely steer the loop: an infinite hysteresis
        // streak means no repair ever commits.
        let mut frozen = GuardConfig::default();
        frozen.hysteresis.required_streak = u32::MAX;
        let gated = run_campaign_with_guard(&spec, &timing, 1, &frozen).expect("campaign");
        assert_eq!(gated.learning.hysteresis_commits, 0, "{:?}", gated.learning);
        assert!(plain.learning.hysteresis_commits > 0, "{:?}", plain.learning);
    }

    #[test]
    fn campaigns_replay_bit_identically() {
        let (spec, timing) = pop_outage();
        let a = run_campaign(&spec, &timing, 7).expect("campaign");
        let b = run_campaign(&spec, &timing, 7).expect("campaign");
        assert_eq!(a.schedule.trace(), b.schedule.trace());
        assert_eq!(a.sections(), b.sections());
        let c = run_campaign(&spec, &timing, 8).expect("campaign");
        assert_ne!(a.schedule.trace(), c.schedule.trace(), "seed must matter");
    }

    #[test]
    fn sections_carry_provenance_and_all_four_strategies() {
        let (spec, timing) = pop_outage();
        let out = run_campaign(&spec, &timing, 1).expect("campaign");
        let sections = out.sections();
        let titles: Vec<&str> = sections.iter().map(|s| s.title.as_str()).collect();
        assert_eq!(
            titles,
            vec![
                "chaos.pop-outage.schedule",
                "chaos.pop-outage.painter",
                "chaos.pop-outage.anycast",
                "chaos.pop-outage.dns",
                "chaos.pop-outage.painter-closed-loop",
                "chaos.pop-outage.learning",
                "chaos.pop-outage.incidents",
                "chaos.pop-outage.incident0",
            ]
        );
        // The recorded spec round-trips through the loader.
        let spec_field = match sections[0].get("spec") {
            Some(painter_obs::Value::Str(s)) => s.clone(),
            other => panic!("expected spec string, got {other:?}"),
        };
        let back = ScenarioSpec::from_json(&spec_field).expect("spec round-trip");
        assert_eq!(back, spec);
    }

    #[test]
    fn closed_loop_repairs_then_rolls_back_under_a_pop_outage() {
        let (spec, timing) = pop_outage();
        let out = run_campaign(&spec, &timing, 1).expect("campaign");
        // The sustained-dark prefixes force a repair commit through the
        // hysteresis gate, and the post-install health window (still
        // mid-outage, measured against the pre-fault baseline) trips the
        // availability guardrail into a rollback.
        assert!(out.learning.hysteresis_commits >= 1, "stats {:?}", out.learning);
        assert!(out.learning.rollbacks >= 1, "stats {:?}", out.learning);
        assert!(out.learning.install_ops >= 2, "install + revert, {:?}", out.learning);
        // The withdraw burst at fault onset churn-flags the dying
        // ingresses; their samples must be held, not learned.
        assert!(out.learning.samples_quarantined > 0, "stats {:?}", out.learning);
        // Grow-only repairs plus overlay scoring: the closed loop never
        // does worse than the fixed plan it protects.
        assert!(
            out.closed_loop.availability() >= out.painter.availability(),
            "closed loop {} vs painter {}",
            out.closed_loop.availability(),
            out.painter.availability()
        );
    }

    #[test]
    fn every_fault_is_attributed_and_replays_bit_identically() {
        let timing = ChaosTiming::for_scale(Scale::Test);
        // multi-fault: the PoP outage plus a latency spike, bursty loss,
        // and a darkened probe fleet — four faults, not all of which
        // produce liveness evidence.
        let spec = standard_suite(&timing).remove(2);
        let a = run_campaign(&spec, &timing, 1).expect("campaign");
        let b = run_campaign(&spec, &timing, 1).expect("campaign");

        // Total attribution: exactly one incident per spec fault.
        assert_eq!(a.incidents.len(), a.schedule.fault_count());
        assert_eq!(a.incidents.len(), spec.faults.len());
        for (f, inc) in a.incidents.iter().enumerate() {
            assert_eq!(inc.fault, f);
            assert_eq!(inc.name, spec.faults[f].name);
        }

        // The explanation artifacts are byte-identical across replays.
        assert_eq!(a.incidents, b.incidents);
        let timeline_a = crate::incidents::render_timeline(&a.schedule, &a.events, &a.incidents);
        let timeline_b = crate::incidents::render_timeline(&b.schedule, &b.events, &b.incidents);
        assert_eq!(timeline_a, timeline_b);
        assert_eq!(
            painter_obs::fnv1a(timeline_a.as_bytes()),
            painter_obs::fnv1a(timeline_b.as_bytes())
        );
        assert_eq!(
            painter_obs::chrome_trace_json(&a.events),
            painter_obs::chrome_trace_json(&b.events)
        );

        if painter_obs::enabled() {
            // The PoP outage (fault 0) must be fully explained: its
            // withdrawals and blackholed ingresses chain to tunnel
            // deaths, a failover, and an eventual recovery.
            let outage = &a.incidents[0];
            assert!(outage.observed, "{outage:?}");
            assert_eq!(outage.kind, "pop_outage");
            assert!(outage.detection_ms >= 0.0, "{outage:?}");
            assert!(outage.failover_ms >= 0.0, "{outage:?}");
            assert!(outage.blast_tunnels >= 1, "{outage:?}");
            assert!(outage.blast_ugs >= 1, "{outage:?}");
            assert_ne!(outage.recovered_by, "none", "{outage:?}");
            // The probe-fleet darkening is detected via suppressed
            // probes chained to its fault span.
            let fleet = &a.incidents[3];
            assert_eq!(fleet.kind, "probe_fleet_loss");
            assert!(fleet.observed, "{fleet:?}");
            // The latency spike degrades RTT but kills nothing: no
            // liveness evidence ever chains to it, and the attribution
            // says so explicitly instead of dropping it.
            let spike = &a.incidents[1];
            assert!(!spike.observed, "{spike:?}");
            assert_eq!(spike.recovered_by, "none");
            assert!(!a.events.is_empty());
        } else {
            // obs-off: the stream is empty, the schema is unchanged,
            // and every fault reports explicitly unobserved.
            assert!(a.events.is_empty());
            assert!(a.incidents.iter().all(|i| !i.observed));
        }
    }

    #[test]
    fn route_leak_churn_is_quarantined_not_learned() {
        let timing = ChaosTiming::for_scale(Scale::Test);
        let spec = ScenarioSpec::new("route-leak", timing.horizon_s).fault(
            FaultSpec::new("leak0", FaultKind::RouteLeak, Target::Peering(0))
                .at(timing.fault_at_s)
                .lasting(10.0),
        );
        let out = run_campaign(&spec, &timing, 1).expect("campaign");
        // The leak floods the control plane with policy-violating
        // announcements. The loop must hold those windows' samples in
        // quarantine rather than fold leak-era paths into the model...
        assert!(out.learning.samples_quarantined > 0, "stats {:?}", out.learning);
        // ...and must not invent darkness: the stub's data plane never
        // actually broke, so no ingress gets marked unreachable, no
        // repair commits, and the scored data plane matches the fixed
        // plan's exactly.
        assert_eq!(out.learning.unreachable_marks, 0, "stats {:?}", out.learning);
        assert_eq!(out.learning.hysteresis_commits, 0, "stats {:?}", out.learning);
        assert_eq!(
            out.closed_loop.availability(),
            out.painter.availability(),
            "no commit ⇒ the paired runs must score identically"
        );
    }

    #[test]
    fn sweep_maps_the_detection_tradeoff() {
        let timing = ChaosTiming::for_scale(Scale::Test);
        let (_, points) = run_sweep(&timing, 1).expect("sweep");
        assert_eq!(points.len(), 27, "3x3x3 grid");
        for p in &points {
            assert!(p.detection_ms >= 0.0, "undetected blackhole at {}", p.tag());
            assert!(p.recovery_ms >= 0.0, "no fail-back at {}", p.tag());
            assert!(p.availability > 0.9, "availability collapse at {}", p.tag());
        }
        // The fault hits the active path, so detection rides the send
        // stream and stays fast everywhere; recovery of a dead path is
        // probe-driven, so tighter probing fails back sooner on average.
        let mean_recovery = |probe: f64| {
            let v: Vec<f64> = points
                .iter()
                .filter(|p| p.probe_interval_ms == probe)
                .map(|p| p.recovery_ms)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(
            mean_recovery(25.0) < mean_recovery(100.0),
            "25 ms probes {} must fail back before 100 ms probes {}",
            mean_recovery(25.0),
            mean_recovery(100.0)
        );
        // Sections render one cell each plus config and tradeoff.
        let sections = sweep_sections(Scale::Test, 1).expect("sections");
        assert_eq!(sections.len(), 29);
        assert_eq!(sections[0].title, "chaos.sweep.config");
        assert_eq!(sections[1].title, "chaos.sweep.p25_t115_d100");
        assert_eq!(sections.last().unwrap().title, "chaos.sweep.tradeoff");
    }

    #[test]
    fn standard_suite_compiles_against_the_harness_world() {
        let timing = ChaosTiming::for_scale(Scale::Test);
        let view = WorldView::from_deployment(&build_world().deployment, prefix_plan());
        for spec in standard_suite(&timing) {
            let s = Schedule::compile(&spec, &view, 1).expect("compile");
            assert!(!s.injections().is_empty(), "{} is empty", spec.name);
            assert!(s.first_at().unwrap() >= SimTime::from_secs(timing.warmup_s));
        }
    }
}
