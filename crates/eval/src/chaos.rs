//! Chaos resilience harness: the generalized Fig. 10.
//!
//! Fig. 10 asks one question about one fault: after a PoP dies, how fast
//! does each steering layer recover? This module asks the same question
//! about *any* compiled [`painter_chaos::Schedule`]: a campaign runs the
//! identical fault schedule against three steering strategies —
//!
//! * **painter** — the Traffic Manager holds tunnels to every prefix and
//!   fails over on RTT-timescale probe evidence;
//! * **anycast** — a single anycast prefix; recovery waits for BGP
//!   reconvergence;
//! * **dns** — per-PoP unicast prefixes behind a health-checked DNS
//!   record; recovery waits for the next TTL boundary;
//!
//! and each strategy is scored with a [`Scorecard`] (availability,
//! time-to-recover histogram, failovers, latency inflation) emitted as
//! `chaos.*` report sections.
//!
//! Determinism: the campaign world, the compiled schedule, the sampled
//! BGP state, and every Traffic Manager run are pure functions of
//! `(spec, scale, seed)`, so a suite's sections — and their JSON
//! rendering — are byte-identical across same-seed reruns. The
//! per-campaign `chaos.<name>.schedule` section records the spec and an
//! FNV-1a digest of the injection trace as the replay receipt.

use crate::scenario::{Scale, SALT};
use painter_bgp::dynamics::{BgpEngine, DynamicsConfig};
use painter_bgp::PrefixId;
use painter_chaos::{
    program_bgp, program_tm, DataPlaneState, FaultEvent, FaultKind, FaultSpec, ScenarioSpec,
    Schedule, Scorecard, Target, TmTarget, WorldView,
};
use painter_eventsim::{derive_seed, SimTime};
use painter_geo::{metro, Region};
use painter_obs::Section;
use painter_tm::{TmSimulation, TmSimulationConfig, TunnelId};
use painter_topology::{AsGraph, AsTier, Deployment, PeeringId, PeeringKind, Relationship};

/// Sampling grid for coupling BGP state into the TM channel schedules.
const SAMPLE_MS: f64 = 25.0;
/// Extra RTT on the anycast path (shared front-end VIP indirection; see
/// `figs::fig10`).
const ANYCAST_OVERHEAD_MS: f64 = 4.0;

/// Campaign clock constants, scale-dependent so tests stay fast while
/// the paper-sized run reproduces Fig. 10's 60 s TTL.
#[derive(Debug, Clone, Copy)]
pub struct ChaosTiming {
    /// BGP warm-up before the sampled series starts meaning anything.
    pub warmup_s: f64,
    /// DNS record TTL: the DNS strategy re-resolves only at multiples
    /// of this.
    pub dns_ttl_s: f64,
    /// Where the standard suite lands its first fault (mid-TTL, so DNS
    /// pays the worst-case wait).
    pub fault_at_s: f64,
    /// Campaign horizon.
    pub horizon_s: f64,
}

impl ChaosTiming {
    /// The clock for a [`Scale`].
    pub fn for_scale(scale: Scale) -> ChaosTiming {
        match scale {
            Scale::Test => {
                ChaosTiming { warmup_s: 10.0, dns_ttl_s: 20.0, fault_at_s: 22.0, horizon_s: 60.0 }
            }
            Scale::Paper => {
                ChaosTiming { warmup_s: 30.0, dns_ttl_s: 60.0, fault_at_s: 65.0, horizon_s: 130.0 }
            }
        }
    }
}

/// One campaign's full result: the compiled schedule (the replay
/// artifact) plus one scorecard per strategy.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    pub schedule: Schedule,
    /// Canonical JSON of the source spec (provenance).
    pub spec_json: String,
    pub painter: Scorecard,
    pub anycast: Scorecard,
    pub dns: Scorecard,
}

impl CampaignOutcome {
    /// The three scorecards in fixed (painter, anycast, dns) order.
    pub fn scorecards(&self) -> [&Scorecard; 3] {
        [&self.painter, &self.anycast, &self.dns]
    }

    /// Report sections: a `chaos.<name>.schedule` provenance section
    /// followed by one `chaos.<name>.<strategy>` section per strategy.
    pub fn sections(&self) -> Vec<Section> {
        let mut out = Vec::with_capacity(4);
        out.push(
            Section::new(format!("chaos.{}.schedule", self.schedule.name))
                .field("seed", self.schedule.seed)
                .field("injections", self.schedule.injections().len())
                .field(
                    "first_fault_ms",
                    self.schedule.first_at().map(|t| t.as_ms()).unwrap_or(-1.0),
                )
                .field("trace_fnv1a", format!("{:016x}", fnv1a(self.schedule.trace().as_bytes())))
                .field("spec", self.spec_json.as_str()),
        );
        for sc in self.scorecards() {
            out.push(sc.section());
        }
        out
    }
}

/// The campaign world: fig10's two-PoP shape (New York = PoP-A,
/// London = PoP-B, two transit ISPs at both, the enterprise stub in New
/// York behind two regional access ISPs, plus churn bystanders).
struct HarnessWorld {
    graph: AsGraph,
    deployment: Deployment,
    stub: painter_topology::AsId,
    stub_metro: painter_geo::MetroId,
}

fn build_world() -> HarnessWorld {
    let ny = painter_geo::metro::all_metro_ids()
        .find(|&m| metro(m).name == "New York")
        .expect("metro db");
    let lon =
        painter_geo::metro::all_metro_ids().find(|&m| metro(m).name == "London").expect("metro db");
    let mut graph = AsGraph::new();
    let isp1 = graph.add_node(AsTier::Tier1, Region::NorthAmerica, vec![ny, lon], 1.05);
    let isp2 = graph.add_node(AsTier::Tier1, Region::Europe, vec![ny, lon], 1.15);
    let acc1 = graph.add_node(AsTier::Access, Region::NorthAmerica, vec![ny], 1.0);
    let acc2 = graph.add_node(AsTier::Access, Region::NorthAmerica, vec![ny], 1.1);
    let stub = graph.add_node(AsTier::Stub, Region::NorthAmerica, vec![ny], 1.0);
    graph.add_link(isp1, isp2, Relationship::PeerWith).expect("new link");
    graph.add_link(isp1, acc1, Relationship::ProviderOf).expect("new link");
    graph.add_link(isp2, acc1, Relationship::ProviderOf).expect("new link");
    graph.add_link(isp1, acc2, Relationship::ProviderOf).expect("new link");
    graph.add_link(isp2, acc2, Relationship::ProviderOf).expect("new link");
    graph.add_link(acc1, stub, Relationship::ProviderOf).expect("new link");
    graph.add_link(acc2, stub, Relationship::ProviderOf).expect("new link");
    for i in 0..8 {
        let bystander = graph.add_node(AsTier::Stub, Region::NorthAmerica, vec![ny], 1.0);
        let upstream = if i % 2 == 0 { acc1 } else { acc2 };
        graph.add_link(upstream, bystander, Relationship::ProviderOf).expect("new link");
    }
    let deployment = Deployment::from_parts(
        vec![ny, lon],
        vec![
            (0, isp1, PeeringKind::TransitProvider),
            (0, isp2, PeeringKind::TransitProvider),
            (1, isp1, PeeringKind::TransitProvider),
            (1, isp2, PeeringKind::TransitProvider),
        ],
    );
    HarnessWorld { graph, deployment, stub, stub_metro: ny }
}

/// Chaos tunnel index 0 is the anycast prefix; 1.. are the per-peering
/// unicast prefixes (the order handed to `TmSimulation::add_path`).
fn prefix_plan() -> Vec<(PrefixId, Vec<PeeringId>)> {
    vec![
        (PrefixId(0), vec![PeeringId(0), PeeringId(1), PeeringId(2), PeeringId(3)]),
        (PrefixId(1), vec![PeeringId(0)]),
        (PrefixId(2), vec![PeeringId(1)]),
        (PrefixId(3), vec![PeeringId(2)]),
        (PrefixId(4), vec![PeeringId(3)]),
    ]
}

/// Runs one campaign: compiles the spec, drives one shared BGP engine,
/// samples gated per-prefix reachability/latency onto three Traffic
/// Manager runs (painter / anycast / dns), and scores each.
pub fn run_campaign(
    spec: &ScenarioSpec,
    timing: &ChaosTiming,
    seed: u64,
) -> Result<CampaignOutcome, String> {
    let world = build_world();
    let plan = prefix_plan();
    let view = WorldView::from_deployment(&world.deployment, plan.clone());
    let schedule = Schedule::compile(spec, &view, seed)?;
    let first_fault = schedule.first_at().unwrap_or(SimTime::MAX);
    let horizon = SimTime::from_secs(timing.horizon_s);

    // --- Shared control plane: announce everything, queue the chaos
    // events, let BGP converge through the warm-up.
    let dynamics = DynamicsConfig { proc_delay_ms: (30.0, 400.0), mrai_secs: (2.0, 8.0), seed };
    let mut engine = BgpEngine::new(&world.graph, &world.deployment, dynamics, SALT);
    for (prefix, peerings) in &plan {
        for &pe in peerings {
            engine.announce(SimTime::ZERO, *prefix, pe);
        }
    }
    program_bgp(&schedule, &mut engine);
    engine.run_until(SimTime::from_secs(timing.warmup_s));

    // Converged base RTT per chaos tunnel (what a blackhole recovery
    // restores).
    let base: Vec<f64> = plan
        .iter()
        .map(|(prefix, _)| {
            let overhead = if prefix.0 == 0 { ANYCAST_OVERHEAD_MS } else { 0.0 };
            engine
                .current_rtt_ms(world.stub, world.stub_metro, *prefix)
                .map(|r| r + overhead)
                .unwrap_or(100.0)
        })
        .collect();

    // --- Sample BGP state once, gated by administrative data-plane
    // liveness: a route through a dead PoP blackholes immediately even
    // while its session waits out failure detection, and a blackholed
    // tunnel stays dark regardless of what BGP believes.
    // Half-open sampling [0, horizon): a control-plane change at exactly
    // the horizon cannot affect any in-horizon request, but reprogramming
    // a channel down there would drop its in-flight responses.
    let steps = (timing.horizon_s * 1000.0 / SAMPLE_MS) as usize;
    let mut dps = DataPlaneState::new(view.pops as usize, plan.len());
    let mut avail: Vec<Vec<Option<f64>>> = Vec::with_capacity(steps);
    for step in 0..steps {
        let t = SimTime::from_ms(step as f64 * SAMPLE_MS);
        engine.run_until(t);
        dps.advance(&schedule, t);
        let row: Vec<Option<f64>> = plan
            .iter()
            .enumerate()
            .map(|(idx, (prefix, _))| {
                if dps.tunnel_down(idx) {
                    return None;
                }
                let overhead = if prefix.0 == 0 { ANYCAST_OVERHEAD_MS } else { 0.0 };
                engine
                    .current_path(world.stub, *prefix)
                    .filter(|(_, ingress)| !dps.pop_down(world.deployment.peering(*ingress).pop))
                    .and_then(|_| engine.current_rtt_ms(world.stub, world.stub_metro, *prefix))
                    .map(|r| r + overhead)
            })
            .collect();
        avail.push(row);
    }

    // --- Strategy 1: PAINTER — every tunnel, full fault programming.
    let painter = {
        let mut tm = TmSimulation::new(TmSimulationConfig {
            seed: derive_seed(seed, 1),
            ..Default::default()
        });
        let tunnels = add_all_paths(&mut tm, &world, &plan, &base);
        let targets = tm_targets(&tunnels, &base);
        program_tm(&schedule, &mut tm, &targets);
        for (step, row) in avail.iter().enumerate() {
            let t = SimTime::from_ms(step as f64 * SAMPLE_MS);
            for (idx, sample) in row.iter().enumerate() {
                match sample {
                    Some(rtt) => tm.schedule_path_rtt(t, tunnels[idx], *rtt),
                    None => tm.schedule_path_down(t, tunnels[idx]),
                }
            }
        }
        drain_and_score(&mut tm, &spec.name, "painter", horizon, first_fault)
    };

    // --- Strategy 2: anycast — one tunnel; recovery is BGP
    // reconvergence onto the surviving ingress.
    let anycast = {
        let mut tm = TmSimulation::new(TmSimulationConfig {
            seed: derive_seed(seed, 2),
            ..Default::default()
        });
        let pop = world.deployment.peering(plan[0].1[0]).pop;
        let tunnel = tm.add_path(plan[0].0, pop, base[0]);
        program_tm(&schedule, &mut tm, &[TmTarget { tunnel, base_rtt_ms: base[0] }]);
        for (step, row) in avail.iter().enumerate() {
            let t = SimTime::from_ms(step as f64 * SAMPLE_MS);
            match row[0] {
                Some(rtt) => tm.schedule_path_rtt(t, tunnel, rtt),
                None => tm.schedule_path_down(t, tunnel),
            }
        }
        drain_and_score(&mut tm, &spec.name, "anycast", horizon, first_fault)
    };

    // --- Strategy 3: DNS — all unicast tunnels exist, but only the
    // currently-resolved record's tunnel is usable; the (health-checked)
    // resolver re-picks the lowest-RTT reachable prefix only at TTL
    // boundaries. Tunnel liveness flows through the sampled schedule, so
    // only the latency/loss/probe overlays are injected directly.
    let dns = {
        let mut tm = TmSimulation::new(TmSimulationConfig {
            seed: derive_seed(seed, 3),
            ..Default::default()
        });
        let tunnels = add_all_paths(&mut tm, &world, &plan, &base);
        let targets = tm_targets(&tunnels, &base);
        program_overlays(&schedule, &mut tm, &targets);
        let ttl_ns = SimTime::from_secs(timing.dns_ttl_s).as_nanos().max(1);
        let mut resolved: Option<usize> = None;
        let mut window = u64::MAX;
        for (step, row) in avail.iter().enumerate() {
            let t = SimTime::from_ms(step as f64 * SAMPLE_MS);
            let w = t.as_nanos() / ttl_ns;
            if w != window {
                window = w;
                // Anycast (index 0) is not a DNS answer; an all-dark
                // fleet keeps the stale record.
                let best = row
                    .iter()
                    .enumerate()
                    .skip(1)
                    .filter_map(|(idx, s)| s.map(|rtt| (idx, rtt)))
                    .min_by(|a, b| a.1.total_cmp(&b.1));
                if let Some((idx, _)) = best {
                    resolved = Some(idx);
                }
            }
            for (idx, sample) in row.iter().enumerate() {
                match (Some(idx) == resolved, sample) {
                    (true, Some(rtt)) => tm.schedule_path_rtt(t, tunnels[idx], *rtt),
                    _ => tm.schedule_path_down(t, tunnels[idx]),
                }
            }
        }
        drain_and_score(&mut tm, &spec.name, "dns", horizon, first_fault)
    };

    Ok(CampaignOutcome { schedule, spec_json: spec.to_json(), painter, anycast, dns })
}

/// Runs the sim one second past the horizon so responses to requests
/// sent near the end can land, then scores only the in-horizon
/// records/switches. Without the drain a strategy resting on a
/// long-RTT path would book its final in-flight window as a spurious
/// trailing outage.
fn drain_and_score(
    tm: &mut TmSimulation,
    campaign: &str,
    strategy: &str,
    horizon: SimTime,
    first_fault: SimTime,
) -> Scorecard {
    tm.run(SimTime::from_nanos(horizon.as_nanos() + SimTime::from_secs(1.0).as_nanos()));
    let records: Vec<_> = tm.records().iter().filter(|r| r.sent <= horizon).copied().collect();
    let switches: Vec<_> = tm.switch_log().iter().filter(|s| s.at <= horizon).copied().collect();
    Scorecard::from_records(campaign, strategy, &records, &switches, first_fault)
}

fn add_all_paths(
    tm: &mut TmSimulation,
    world: &HarnessWorld,
    plan: &[(PrefixId, Vec<PeeringId>)],
    base: &[f64],
) -> Vec<TunnelId> {
    plan.iter()
        .enumerate()
        .map(|(idx, (prefix, peerings))| {
            let pop = world.deployment.peering(peerings[0]).pop;
            tm.add_path(*prefix, pop, base[idx])
        })
        .collect()
}

fn tm_targets(tunnels: &[TunnelId], base: &[f64]) -> Vec<TmTarget> {
    tunnels
        .iter()
        .zip(base)
        .map(|(&tunnel, &base_rtt_ms)| TmTarget { tunnel, base_rtt_ms })
        .collect()
}

/// Injects only the overlay faults (latency, bursty loss, probe-fleet
/// loss) — for strategies whose tunnel liveness is already authored by
/// the gated sampling loop, where `program_tm`'s blackhole recovery
/// events would wrongly revive channels the strategy may not use.
fn program_overlays(schedule: &Schedule, tm: &mut TmSimulation, targets: &[TmTarget]) {
    for inj in schedule.injections() {
        let at = inj.at;
        match inj.event {
            FaultEvent::LatencyAdd { tunnel, add_ms } => {
                if let Some(t) = targets.get(tunnel) {
                    tm.schedule_path_extra_latency(at, t.tunnel, add_ms);
                }
            }
            FaultEvent::LatencyClear { tunnel, .. } => {
                if let Some(t) = targets.get(tunnel) {
                    tm.schedule_path_extra_latency(at, t.tunnel, 0.0);
                }
            }
            FaultEvent::BurstStart { tunnel, p_enter_bad, p_leave_bad, loss_good, loss_bad } => {
                if let Some(t) = targets.get(tunnel) {
                    tm.schedule_path_burst(
                        at,
                        t.tunnel,
                        Some((p_enter_bad, p_leave_bad, loss_good, loss_bad)),
                    );
                }
            }
            FaultEvent::BurstEnd { tunnel } => {
                if let Some(t) = targets.get(tunnel) {
                    tm.schedule_path_burst(at, t.tunnel, None);
                }
            }
            FaultEvent::ProbeLoss { fraction } => tm.schedule_probe_loss(at, fraction),
            FaultEvent::ProbeRestore => tm.schedule_probe_loss(at, 0.0),
            _ => {}
        }
    }
}

/// The standard three-campaign suite, timed against `timing` so the
/// first fault always lands mid-TTL (DNS's worst case).
pub fn standard_suite(timing: &ChaosTiming) -> Vec<ScenarioSpec> {
    let t0 = timing.fault_at_s;
    let h = timing.horizon_s;
    let outage = (h - t0).min(30.0);
    vec![
        // Fig. 10 proper: one PoP dies; sessions notice on their own
        // failure-detection timers.
        ScenarioSpec::new("pop-outage", h).fault(
            FaultSpec::new(
                "popA",
                FaultKind::PopOutage { detection_spread_ms: 2100.0 },
                Target::Pop(0),
            )
            .at(t0)
            .lasting(outage),
        ),
        // Control-plane churn without a data-plane disaster: a flapping
        // session plus a withdrawal storm on its PoP neighbor.
        ScenarioSpec::new("bgp-churn", h)
            .fault(
                FaultSpec::new("flap0", FaultKind::SessionReset, Target::Peering(0))
                    .at(t0)
                    .lasting(3.0)
                    .recurring(10.0, 2, 2.0),
            )
            .fault(
                FaultSpec::new(
                    "storm1",
                    FaultKind::WithdrawStorm { spread_ms: 700.0 },
                    Target::Peering(1),
                )
                .at(t0 + 5.0)
                .lasting(6.0),
            ),
        // The compound case: the PoP outage *plus* degraded survivors
        // (latency spike and bursty loss at PoP-B) *plus* a darkened
        // probe fleet — every plane faulted at once.
        ScenarioSpec::new("multi-fault", h)
            .fault(
                FaultSpec::new(
                    "popA",
                    FaultKind::PopOutage { detection_spread_ms: 2100.0 },
                    Target::Pop(0),
                )
                .at(t0)
                .lasting(outage),
            )
            .fault(
                FaultSpec::new(
                    "spike-b1",
                    FaultKind::LatencySpike { add_ms: 35.0 },
                    Target::Tunnel(3),
                )
                .at(t0 + 2.0)
                .lasting(10.0),
            )
            .fault(
                FaultSpec::new(
                    "burst-b2",
                    FaultKind::BurstyLoss {
                        p_enter_bad: 0.05,
                        p_leave_bad: 0.25,
                        loss_good: 0.0,
                        loss_bad: 0.7,
                    },
                    Target::Tunnel(4),
                )
                .at(t0 + 2.0)
                .lasting(10.0),
            )
            .fault(
                FaultSpec::new("fleet", FaultKind::ProbeFleetLoss { fraction: 0.3 }, Target::Fleet)
                    .at(t0)
                    .lasting(20.0),
            ),
    ]
}

/// Runs the standard suite at a scale and seed.
pub fn run_suite(scale: Scale, seed: u64) -> Result<Vec<CampaignOutcome>, String> {
    let timing = ChaosTiming::for_scale(scale);
    standard_suite(&timing).iter().map(|spec| run_campaign(spec, &timing, seed)).collect()
}

/// The whole suite as flat `chaos.*` report sections (provenance plus
/// three scorecards per campaign), ready to push into a `RunReport`.
pub fn suite_sections(scale: Scale, seed: u64) -> Result<Vec<Section>, String> {
    Ok(run_suite(scale, seed)?.iter().flat_map(|o| o.sections()).collect())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop_outage() -> (ScenarioSpec, ChaosTiming) {
        let timing = ChaosTiming::for_scale(Scale::Test);
        let spec = standard_suite(&timing).remove(0);
        (spec, timing)
    }

    #[test]
    fn pop_outage_orders_painter_anycast_dns() {
        let (spec, timing) = pop_outage();
        let out = run_campaign(&spec, &timing, 1).expect("campaign");
        // PAINTER recovers on the probe timescale; anycast waits for
        // BGP; DNS waits for the 40 s TTL boundary (fault at 22 s).
        let p = out.painter.worst_ttr_ms();
        let a = out.anycast.worst_ttr_ms();
        let d = out.dns.worst_ttr_ms();
        assert!(p < 1_000.0, "painter ttr {p} ms");
        assert!(a > p, "anycast {a} ms must be slower than painter {p} ms");
        assert!(d > a, "dns {d} ms must be slower than anycast {a} ms");
        assert!(d > 10_000.0 && d < 25_000.0, "dns waits out the TTL, got {d} ms");
        assert_eq!(out.dns.unrecovered, 0, "dns must recover at the boundary");
        // Everyone loses some requests; painter loses the fewest.
        assert!(out.painter.availability() > out.anycast.availability());
        assert!(out.anycast.availability() > out.dns.availability());
    }

    #[test]
    fn campaigns_replay_bit_identically() {
        let (spec, timing) = pop_outage();
        let a = run_campaign(&spec, &timing, 7).expect("campaign");
        let b = run_campaign(&spec, &timing, 7).expect("campaign");
        assert_eq!(a.schedule.trace(), b.schedule.trace());
        assert_eq!(a.sections(), b.sections());
        let c = run_campaign(&spec, &timing, 8).expect("campaign");
        assert_ne!(a.schedule.trace(), c.schedule.trace(), "seed must matter");
    }

    #[test]
    fn sections_carry_provenance_and_all_three_strategies() {
        let (spec, timing) = pop_outage();
        let out = run_campaign(&spec, &timing, 1).expect("campaign");
        let sections = out.sections();
        let titles: Vec<&str> = sections.iter().map(|s| s.title.as_str()).collect();
        assert_eq!(
            titles,
            vec![
                "chaos.pop-outage.schedule",
                "chaos.pop-outage.painter",
                "chaos.pop-outage.anycast",
                "chaos.pop-outage.dns",
            ]
        );
        // The recorded spec round-trips through the loader.
        let spec_field = match sections[0].get("spec") {
            Some(painter_obs::Value::Str(s)) => s.clone(),
            other => panic!("expected spec string, got {other:?}"),
        };
        let back = ScenarioSpec::from_json(&spec_field).expect("spec round-trip");
        assert_eq!(back, spec);
    }

    #[test]
    fn standard_suite_compiles_against_the_harness_world() {
        let timing = ChaosTiming::for_scale(Scale::Test);
        let view = WorldView::from_deployment(&build_world().deployment, prefix_plan());
        for spec in standard_suite(&timing) {
            let s = Schedule::compile(&spec, &view, 1).expect("compile");
            assert!(!s.injections().is_empty(), "{} is empty", spec.name);
            assert!(s.first_at().unwrap() >= SimTime::from_secs(timing.warmup_s));
        }
    }
}
