//! Regenerates the paper's figures.
//!
//! ```text
//! figures <fig-id>... [flags]        # e.g. figures fig6a fig10
//! figures all [flags]                # every figure, paper order
//! figures chaos [flags]              # chaos resilience suite (chaos.* sections)
//! figures chaos-sweep [flags]        # TM detection-knob sweep vs link blackholes
//! figures chaos-search [flags]       # adversarial scenario search (chaos.search.*)
//! figures guard-tune [flags]         # guard co-evolution vs the corpus (guard.tune.*)
//! figures farm [flags]               # multi-seed corpus farm, one class per failure mode
//! figures lp-gap [flags]             # exact LP vs greedy optimality gap (lp.*)
//! figures scale [flags]              # million-UG scale sweep (scale.* + BENCH_scale.json)
//! figures soak [flags]               # long-horizon soak campaign (soak.* sections)
//! figures explain [flags]            # causal timeline + incident attribution
//! figures list                       # available ids
//!
//! --test             CI-sized inputs (default: paper-sized, use release)
//! --seed <n>         chaos campaign / search / tune seed (default 1)
//! --budget <n>       chaos-search candidate evaluations, or guard-tune
//!                    guard candidates per round (default 12)
//! --pin <dir>        chaos-search/farm: write shrunk reproducers into <dir>
//! --seeds <a,b,..>   farm: comma-separated seed list (default: seed,seed+1)
//! --guard <preset>   chaos-search: defend with this guard preset
//!                    ("default" or "tuned"; entries are tagged with it)
//! --rounds <n>       guard-tune: adversary→guard co-evolution rounds
//!                    (default 2)
//! --adv-budget <n>   guard-tune: adversary evaluations per round
//!                    (default 8)
//! --corpus <dir>     guard-tune: corpus of pinned reproducers to tune
//!                    against (default "corpus"; missing dir = empty)
//! --bench-out <p>    scale: where the wall-clock trajectory JSON goes
//!                    (default "BENCH_scale.json")
//! --markdown         EXPERIMENTS-style summary rows (id | title | notes)
//! --csv              full per-series CSV dump (the old default)
//! --report <p>.json  also write the structured RunReport as JSON
//! --scenario <path>  explain: a pinned CorpusEntry or raw ScenarioSpec
//!                    JSON (default: the standard suite's pop outage)
//! --chrome <p>.json  explain: also write the Chrome-trace export
//! ```
//!
//! `figures explain` replays one campaign with the flight recorder on
//! and prints the deterministic event timeline, the per-fault incident
//! records, and an `explain.fnv1a` digest — byte-identical across
//! same-seed replays (the `trace-determinism` CI job holds it to that).
//!
//! The default output is the structured run-report table built from
//! [`painter_eval::figures_report`]; `--report` writes the same data
//! machine-readably, with every series' points included.

use painter_eval::chaos::{run_campaign, standard_suite, ChaosTiming};
use painter_eval::figs::{run, ALL_FIGURES};
use painter_eval::incidents::render_timeline;
use painter_eval::{figures_report, Figure, Scale};
use rayon::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" {
        println!(
            "available figures: {} chaos chaos-sweep chaos-search guard-tune farm lp-gap scale \
             soak explain",
            ALL_FIGURES.join(" ")
        );
        println!(
            "usage: figures <fig-id>...|all|chaos|chaos-sweep|chaos-search|guard-tune|farm|lp-gap|\
             scale|soak|explain \
             [--test] [--seed <n>] [--seeds <a,b,..>] [--budget <n>] [--pin <dir>] \
             [--guard <preset>] [--rounds <n>] [--adv-budget <n>] [--corpus <dir>] \
             [--bench-out <path>.json] [--markdown|--csv] [--report <path>.json] \
             [--scenario <path>.json] [--chrome <path>.json]"
        );
        return;
    }
    if args[0] == "explain" {
        explain(&args);
        return;
    }
    let scale = if args.iter().any(|a| a == "--test") { Scale::Test } else { Scale::Paper };
    let markdown = args.iter().any(|a| a == "--markdown");
    let csv = args.iter().any(|a| a == "--csv");
    let report_path = args.iter().position(|a| a == "--report").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--report requires a path argument");
            std::process::exit(2);
        })
    });
    let seed: u64 = args
        .iter()
        .position(|a| a == "--seed")
        .map(|i| {
            args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--seed requires an integer argument");
                std::process::exit(2);
            })
        })
        .unwrap_or(1);
    let budget: usize = args
        .iter()
        .position(|a| a == "--budget")
        .map(|i| {
            args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--budget requires an integer argument");
                std::process::exit(2);
            })
        })
        .unwrap_or(12);
    let pin_dir = args.iter().position(|a| a == "--pin").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--pin requires a directory argument");
            std::process::exit(2);
        })
    });
    let guard = args
        .iter()
        .position(|a| a == "--guard")
        .map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("--guard requires a preset name (default|tuned)");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| "default".to_string());
    let rounds: usize = args
        .iter()
        .position(|a| a == "--rounds")
        .map(|i| {
            args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--rounds requires an integer argument");
                std::process::exit(2);
            })
        })
        .unwrap_or(2);
    let adv_budget: usize = args
        .iter()
        .position(|a| a == "--adv-budget")
        .map(|i| {
            args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                eprintln!("--adv-budget requires an integer argument");
                std::process::exit(2);
            })
        })
        .unwrap_or(8);
    let corpus_dir = args
        .iter()
        .position(|a| a == "--corpus")
        .map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("--corpus requires a directory argument");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| "corpus".to_string());
    let farm_seeds: Vec<u64> = args
        .iter()
        .position(|a| a == "--seeds")
        .map(|i| {
            let list = args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("--seeds requires a comma-separated integer list");
                std::process::exit(2);
            });
            list.split(',')
                .map(|s| {
                    s.trim().parse().unwrap_or_else(|_| {
                        eprintln!("--seeds: '{s}' is not an integer");
                        std::process::exit(2);
                    })
                })
                .collect()
        })
        .unwrap_or_else(|| vec![seed, seed + 1]);
    let bench_out = args
        .iter()
        .position(|a| a == "--bench-out")
        .map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("--bench-out requires a path argument");
                std::process::exit(2);
            })
        })
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let mut skip_next = false;
    let mut requested: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_FIGURES.to_vec()
    } else {
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if *a == "--report"
                    || *a == "--seed"
                    || *a == "--seeds"
                    || *a == "--budget"
                    || *a == "--pin"
                    || *a == "--guard"
                    || *a == "--rounds"
                    || *a == "--adv-budget"
                    || *a == "--corpus"
                    || *a == "--bench-out"
                    || *a == "--scenario"
                    || *a == "--chrome"
                {
                    skip_next = true;
                }
                !a.starts_with("--")
            })
            .map(String::as_str)
            .collect()
    };
    // `chaos`, `chaos-sweep`, and `chaos-search` are not figures: they
    // run the resilience suite / detection sweep / adversarial search
    // and land as chaos.* sections on the same report.
    let run_chaos = args.iter().any(|a| a == "chaos");
    let run_sweep = args.iter().any(|a| a == "chaos-sweep");
    let run_search = args.iter().any(|a| a == "chaos-search");
    let run_tune = args.iter().any(|a| a == "guard-tune");
    let run_farm = args.iter().any(|a| a == "farm");
    let run_lp = args.iter().any(|a| a == "lp-gap");
    let run_scale_sweep = args.iter().any(|a| a == "scale");
    let run_soak = args.iter().any(|a| a == "soak");
    requested.retain(|id| {
        *id != "chaos"
            && *id != "chaos-sweep"
            && *id != "chaos-search"
            && *id != "guard-tune"
            && *id != "farm"
            && *id != "lp-gap"
            && *id != "scale"
            && *id != "soak"
    });

    // Figure bodies are independent; fan them out over the scoring pool
    // (PAINTER_THREADS-aware). The ordered collect keeps the output in
    // request order, and any nested orchestrator installs its own pool on
    // the worker it lands on.
    let pool = painter_core::parallel::build_pool(None);
    let results: Vec<(&str, Option<Figure>)> =
        pool.install(|| requested.par_iter().map(|&id| (id, run(id, scale))).collect());
    let mut figures = Vec::new();
    let mut failed = false;
    for (id, fig) in results {
        match fig {
            Some(fig) => figures.push(fig),
            None => {
                eprintln!("unknown figure id: {id} (try `figures list`)");
                failed = true;
            }
        }
    }

    let mut report = figures_report("figures", &figures);
    if run_chaos {
        match painter_eval::chaos::suite_sections(scale, seed) {
            Ok(sections) => {
                for section in sections {
                    report.push_section(section);
                }
            }
            Err(e) => {
                eprintln!("chaos suite failed: {e}");
                failed = true;
            }
        }
    }
    if run_sweep {
        match painter_eval::chaos::sweep_sections(scale, seed) {
            Ok(sections) => {
                for section in sections {
                    report.push_section(section);
                }
            }
            Err(e) => {
                eprintln!("chaos sweep failed: {e}");
                failed = true;
            }
        }
    }
    if run_search {
        let config = painter_chaos::SearchConfig::new(seed, budget);
        match painter_eval::chaos_search::run_search_against(scale, config, &guard, &[]) {
            Ok(search_run) => {
                for section in search_run.sections() {
                    report.push_section(section);
                }
                if let Some(dir) = &pin_dir {
                    match search_run.pin_corpus(std::path::Path::new(dir)) {
                        Ok(paths) => {
                            for p in paths {
                                eprintln!("pinned reproducer: {}", p.display());
                            }
                        }
                        Err(e) => {
                            eprintln!("failed to pin corpus into {dir}: {e}");
                            failed = true;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("chaos search failed: {e}");
                failed = true;
            }
        }
    }
    if run_farm {
        match painter_eval::chaos_search::run_corpus_farm(scale, &farm_seeds, budget, &guard) {
            Ok(farm_run) => {
                for section in farm_run.sections() {
                    report.push_section(section);
                }
                if let Some(dir) = &pin_dir {
                    match farm_run.pin_corpus(std::path::Path::new(dir)) {
                        Ok(paths) => {
                            for p in paths {
                                eprintln!("pinned farm reproducer: {}", p.display());
                            }
                        }
                        Err(e) => {
                            eprintln!("failed to pin farm corpus into {dir}: {e}");
                            failed = true;
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("corpus farm failed: {e}");
                failed = true;
            }
        }
    }
    if run_tune {
        let dir = std::path::Path::new(&corpus_dir);
        let corpus = if dir.is_dir() {
            match painter_eval::guard_tune::load_corpus(dir) {
                Ok(corpus) => corpus,
                Err(e) => {
                    eprintln!("guard tune failed: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            eprintln!("no corpus dir {corpus_dir}; tuning against the standard suite only");
            Vec::new()
        };
        let config = painter_eval::guard_tune::GuardTuneConfig {
            seed,
            rounds,
            tune_budget: budget,
            adversary_budget: adv_budget,
        };
        match painter_eval::guard_tune::run_guard_tune(scale, config, &corpus) {
            Ok(tune_run) => {
                for section in tune_run.sections() {
                    report.push_section(section);
                }
            }
            Err(e) => {
                eprintln!("guard tune failed: {e}");
                failed = true;
            }
        }
    }
    if run_lp {
        match painter_eval::lp_gap::lp_gap_sections(scale, seed) {
            Ok(sections) => {
                for section in sections {
                    report.push_section(section);
                }
            }
            Err(e) => {
                eprintln!("lp gap failed: {e}");
                failed = true;
            }
        }
    }
    if run_scale_sweep {
        let config = painter_eval::scale::ScaleConfig::for_scale(scale, seed);
        match painter_eval::scale::run_scale(scale, config) {
            Ok(scale_run) => {
                for section in scale_run.sections() {
                    report.push_section(section);
                }
                // Wall-clock measurements are deliberately kept off the
                // (byte-compared) report; they go to the bench trajectory.
                if let Err(e) = std::fs::write(&bench_out, scale_run.bench().to_json()) {
                    eprintln!("failed to write bench trajectory to {bench_out}: {e}");
                    failed = true;
                } else {
                    eprintln!("wrote bench trajectory: {bench_out}");
                }
            }
            Err(e) => {
                eprintln!("scale sweep failed: {e}");
                failed = true;
            }
        }
    }
    if run_soak {
        // Without --test, `figures soak` runs the full multi-day
        // campaign (`Scale::Soak` and `Scale::Paper` share the shape).
        let soak_scale = if scale == Scale::Test { Scale::Test } else { Scale::Soak };
        match painter_eval::soak::run_soak(soak_scale, seed) {
            Ok(outcome) => {
                for section in outcome.sections() {
                    report.push_section(section);
                }
            }
            Err(e) => {
                eprintln!("soak campaign failed: {e}");
                failed = true;
            }
        }
    }
    if markdown {
        println!("| Figure | Title | Measured vs paper |");
        println!("|---|---|---|");
        for fig in &figures {
            println!("{}", fig.render_markdown_row());
        }
    } else if csv {
        for fig in &figures {
            println!("{}", fig.render());
        }
    } else {
        print!("{}", report.render_table());
    }
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("failed to write report to {path}: {e}");
            failed = true;
        } else {
            eprintln!("wrote report: {path}");
        }
    }
    if failed {
        std::process::exit(2);
    }
}

/// `figures explain`: replays one campaign with the flight recorder on
/// and prints the causal timeline, the per-fault incident records, and
/// the FNV-1a replay digest of that explanation.
fn explain(args: &[String]) {
    let arg_after = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires an argument");
                std::process::exit(2);
            })
        })
    };
    let seed_arg: Option<u64> = arg_after("--seed").map(|s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("--seed requires an integer argument");
            std::process::exit(2);
        })
    });
    let scenario = arg_after("--scenario");
    let chrome_path = arg_after("--chrome");
    let report_path = arg_after("--report");
    let flag_scale = if args.iter().any(|a| a == "--test") { Scale::Test } else { Scale::Paper };

    // A pinned corpus reproducer carries its own (spec, seed, scale);
    // a raw ScenarioSpec uses the command-line seed and scale; with no
    // --scenario the standard suite's pop outage is replayed.
    let (spec, scale, seed) = match &scenario {
        Some(path) => {
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("failed to read {path}: {e}");
                std::process::exit(2);
            });
            match painter_chaos::CorpusEntry::from_json(&text) {
                Ok(entry) => {
                    let scale = if entry.scale == "paper" { Scale::Paper } else { Scale::Test };
                    (entry.spec, scale, seed_arg.unwrap_or(entry.seed))
                }
                Err(_) => match painter_chaos::ScenarioSpec::from_json(&text) {
                    Ok(spec) => (spec, flag_scale, seed_arg.unwrap_or(1)),
                    Err(e) => {
                        eprintln!("{path} is neither a CorpusEntry nor a ScenarioSpec: {e}");
                        std::process::exit(2);
                    }
                },
            }
        }
        None => {
            let timing = ChaosTiming::for_scale(flag_scale);
            (standard_suite(&timing).remove(0), flag_scale, seed_arg.unwrap_or(1))
        }
    };
    let timing = ChaosTiming::for_scale(scale);
    let outcome = match run_campaign(&spec, &timing, seed) {
        Ok(outcome) => outcome,
        Err(e) => {
            eprintln!("explain campaign failed: {e}");
            std::process::exit(2);
        }
    };

    let timeline = render_timeline(&outcome.schedule, &outcome.events, &outcome.incidents);
    print!("{timeline}");
    println!("explain.fnv1a {:016x}", painter_obs::fnv1a(timeline.as_bytes()));

    let mut failed = false;
    if let Some(path) = &chrome_path {
        let json = painter_obs::chrome_trace_json(&outcome.events);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("failed to write chrome trace to {path}: {e}");
            failed = true;
        } else {
            eprintln!("wrote chrome trace: {path}");
        }
    }
    if let Some(path) = &report_path {
        let mut report = painter_obs::RunReport::new("explain");
        for section in outcome.sections() {
            report.push_section(section);
        }
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("failed to write report to {path}: {e}");
            failed = true;
        } else {
            eprintln!("wrote report: {path}");
        }
    }
    if failed {
        std::process::exit(2);
    }
}
