//! Regenerates the paper's figures.
//!
//! ```text
//! figures <fig-id>... [--test] [--markdown]   # e.g. figures fig6a fig10
//! figures all [--test] [--markdown]           # every figure, paper order
//! figures list                                # available ids
//! ```
//!
//! `--test` runs the small (CI-sized) inputs; the default is paper-sized
//! inputs, intended for release builds. `--markdown` emits a summary
//! table (id | title | notes) instead of the full data series.

use painter_eval::figs::{run, ALL_FIGURES};
use painter_eval::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "list" {
        println!("available figures: {}", ALL_FIGURES.join(" "));
        println!("usage: figures <fig-id>...|all [--test]");
        return;
    }
    let scale = if args.iter().any(|a| a == "--test") { Scale::Test } else { Scale::Paper };
    let markdown = args.iter().any(|a| a == "--markdown");
    let requested: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL_FIGURES.to_vec()
    } else {
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect()
    };
    let mut failed = false;
    if markdown {
        println!("| Figure | Title | Measured vs paper |");
        println!("|---|---|---|");
    }
    for id in requested {
        match run(id, scale) {
            Some(fig) => {
                if markdown {
                    println!("{}", fig.render_markdown_row());
                } else {
                    println!("{}", fig.render());
                }
            }
            None => {
                eprintln!("unknown figure id: {id} (try `figures list`)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
