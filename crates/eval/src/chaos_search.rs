//! The adversarial search wired to the chaos harness: what fault
//! sequence hurts the guarded closed loop the most?
//!
//! `painter_chaos::search` owns the generator/climber/shrinker but is
//! deliberately oracle-agnostic; this module supplies the oracle — every
//! candidate [`ScenarioSpec`] runs a full [`super::chaos::run_campaign`]
//! and is scored on the `painter-closed-loop` strategy's scorecard:
//! availability loss first, worst time-to-recover and rollback churn as
//! tie-breaks. The shrunk winners become [`CorpusEntry`]s, ready to pin
//! under `corpus/` where `tests/chaos_corpus.rs` replays them as
//! regression floors.
//!
//! Everything downstream of the seed is deterministic: the grammar is
//! built from the harness's own [`super::chaos::harness_world_view`],
//! candidates are scored at the search seed, and the `chaos.search.*`
//! sections render byte-identically across same-seed reruns (the CI
//! smoke job diffs two such runs).

use crate::chaos::{harness_world_view, run_campaign_with_guard, ChaosTiming};
use crate::scenario::Scale;
use painter_chaos::{
    search_seeded, CorpusEntry, Grammar, ScenarioSpec, Schedule, SearchConfig, SearchOutcome,
    SearchScore,
};
use painter_core::GuardConfig;
use painter_obs::Section;

/// Post-warmup margin before the earliest sampled fault start, so every
/// candidate is scored against a converged baseline.
const START_MARGIN_S: f64 = 2.0;
/// Tail the grammar keeps fault-free, so recoveries (and DNS TTL
/// boundaries) still land inside the horizon.
const TAIL_S: f64 = 10.0;

/// One finished adversarial search against the chaos harness.
#[derive(Debug, Clone)]
pub struct SearchRun {
    pub scale: Scale,
    pub config: SearchConfig,
    /// The guard preset the oracle defended with (every corpus entry is
    /// tagged with it, so replays run the same guard).
    pub guard: String,
    pub outcome: SearchOutcome,
    /// The shrunk survivors as pinnable corpus entries, worst-first,
    /// renamed `adv-s<seed>-r<k>` (rank-stable names; the spec name
    /// feeds no dynamics, so renaming preserves scores and digests).
    pub corpus: Vec<CorpusEntry>,
}

/// The grammar the harness searches under: every element of the
/// campaign world, fault starts in `[warmup+2, horizon-10]`, default
/// budgets otherwise.
pub fn harness_grammar(timing: &ChaosTiming) -> Grammar {
    Grammar::for_view(
        &harness_world_view(),
        timing.horizon_s,
        timing.warmup_s + START_MARGIN_S,
        (timing.horizon_s - TAIL_S).max(timing.warmup_s + START_MARGIN_S),
    )
}

/// Scores one candidate: a full campaign at `seed` under the default
/// guard, read off the closed-loop strategy.
pub fn campaign_score(
    spec: &ScenarioSpec,
    timing: &ChaosTiming,
    seed: u64,
) -> Result<SearchScore, String> {
    campaign_score_with_guard(spec, timing, seed, &GuardConfig::default())
}

/// [`campaign_score`] defending with an explicit guard config — the
/// oracle the co-evolution loop points at its current best guard.
pub fn campaign_score_with_guard(
    spec: &ScenarioSpec,
    timing: &ChaosTiming,
    seed: u64,
    guard: &GuardConfig,
) -> Result<SearchScore, String> {
    let out = run_campaign_with_guard(spec, timing, seed, guard)?;
    Ok(SearchScore {
        availability_loss: 1.0 - out.closed_loop.availability(),
        worst_ttr_ms: out.closed_loop.worst_ttr_ms(),
        rollbacks: out.learning.rollbacks,
    })
}

/// Runs the full search at `scale` with the standard budget split for
/// `(seed, budget)` (see [`SearchConfig::new`]).
pub fn run_search(scale: Scale, seed: u64, budget: usize) -> Result<SearchRun, String> {
    run_search_with(scale, SearchConfig::new(seed, budget))
}

/// [`run_search`] with explicit budgets, for tests that need tiny runs.
pub fn run_search_with(scale: Scale, config: SearchConfig) -> Result<SearchRun, String> {
    run_search_against(scale, config, "default", &[])
}

/// The fully general search: explicit budgets, an explicit guard preset
/// to defend with, and warm-start specs (an existing corpus) evaluated
/// before any random sampling. `guard` must name a
/// [`GuardConfig::preset`]; the preset name is recorded on every corpus
/// entry so replays defend with the same guard that pinned the floor.
pub fn run_search_against(
    scale: Scale,
    config: SearchConfig,
    guard: &str,
    initial: &[ScenarioSpec],
) -> Result<SearchRun, String> {
    let guard_config =
        GuardConfig::preset(guard).ok_or_else(|| format!("unknown guard preset {guard:?}"))?;
    let timing = ChaosTiming::for_scale(scale);
    let grammar = harness_grammar(&timing);
    let seed = config.seed;
    let outcome = search_seeded(&grammar, &config, initial, |spec| {
        campaign_score_with_guard(spec, &timing, seed, &guard_config)
    })?;
    let view = harness_world_view();
    let scale_tag = match scale {
        Scale::Test => "test",
        Scale::Paper => "paper",
    };
    let corpus = outcome
        .ranked
        .iter()
        .enumerate()
        .map(|(rank, cand)| {
            let mut spec = cand.spec.clone();
            spec.name = format!("adv-s{seed}-r{rank}");
            let digest = Schedule::compile(&spec, &view, seed)?.trace_digest();
            Ok(CorpusEntry {
                seed,
                scale: scale_tag.to_string(),
                availability_floor: 1.0 - cand.score.availability_loss,
                tolerance: config.shrink_tolerance,
                worst_ttr_ms: cand.score.worst_ttr_ms,
                rollbacks: cand.score.rollbacks,
                guard: guard.to_string(),
                trace_fnv1a: digest,
                spec,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SearchRun { scale, config, guard: guard.to_string(), outcome, corpus })
}

impl SearchRun {
    /// The search as `chaos.search.*` report sections: the budget
    /// config, the progress counters with the best-score trajectory,
    /// and one `chaos.search.rank<k>` section per shrunk survivor.
    pub fn sections(&self) -> Vec<Section> {
        let mut out = Vec::with_capacity(self.corpus.len() + 2);
        out.push(
            Section::new("chaos.search.config")
                .field("seed", self.config.seed)
                .field("budget", self.config.budget)
                .field("explore", self.config.explore)
                .field("keep", self.config.keep)
                .field("shrink_tolerance", self.config.shrink_tolerance)
                .field("max_shrink_evals", self.config.max_shrink_evals)
                .field("guard", self.guard.as_str()),
        );
        let best_loss = self.outcome.worst().map(|c| c.score.availability_loss).unwrap_or(0.0);
        out.push(
            Section::new("chaos.search.progress")
                .field("candidates_evaluated", self.outcome.evaluated)
                .field("shrink_evals", self.outcome.shrink_evals)
                .field("shrink_steps", self.outcome.shrink_steps)
                .field("best_availability_loss", best_loss)
                .field("best_trajectory", self.outcome.trajectory.clone()),
        );
        for (rank, (cand, entry)) in self.outcome.ranked.iter().zip(&self.corpus).enumerate() {
            out.push(
                Section::new(format!("chaos.search.rank{rank}"))
                    .field("name", entry.spec.name.as_str())
                    .field("availability_loss", cand.score.availability_loss)
                    .field("worst_ttr_ms", cand.score.worst_ttr_ms)
                    .field("rollbacks", cand.score.rollbacks)
                    .field("faults", entry.spec.faults.len())
                    .field("trace_fnv1a", format!("{:016x}", entry.trace_fnv1a))
                    .field("spec", entry.spec.to_json().as_str()),
            );
        }
        out
    }

    /// Writes each corpus entry to `<dir>/<spec-name>.json` (the format
    /// `tests/chaos_corpus.rs` replays). Returns the paths written.
    pub fn pin_corpus(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::with_capacity(self.corpus.len());
        for entry in &self.corpus {
            let path = dir.join(format!("{}.json", entry.spec.name));
            std::fs::write(&path, entry.to_json())?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// [`run_search`] rendered straight to sections, mirroring
/// `chaos::suite_sections` for the figures binary.
pub fn search_sections(scale: Scale, seed: u64, budget: usize) -> Result<Vec<Section>, String> {
    Ok(run_search(scale, seed, budget)?.sections())
}

#[cfg(test)]
mod tests {
    use super::*;
    use painter_obs::Value;

    fn tiny_config(seed: u64) -> SearchConfig {
        SearchConfig {
            seed,
            budget: 3,
            explore: 2,
            keep: 1,
            shrink_tolerance: 0.01,
            max_shrink_evals: 4,
        }
    }

    #[test]
    fn tiny_search_replays_byte_identically_and_finds_real_loss() {
        let a = run_search_with(Scale::Test, tiny_config(7)).expect("search");
        let b = run_search_with(Scale::Test, tiny_config(7)).expect("search");
        assert_eq!(a.sections(), b.sections(), "same seed, same sections");
        assert_eq!(a.corpus, b.corpus);
        assert!(!a.corpus.is_empty());
        // The worst survivor genuinely breaks something.
        let worst = a.outcome.worst().expect("nonempty");
        assert!(worst.score.availability_loss > 0.0, "score {:?}", worst.score);
        // Corpus entries round-trip and agree with the ranked scores.
        for (entry, cand) in a.corpus.iter().zip(&a.outcome.ranked) {
            let back = CorpusEntry::from_json(&entry.to_json()).expect("parse");
            assert_eq!(&back, entry);
            assert!(
                (entry.availability_floor - (1.0 - cand.score.availability_loss)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn guarded_search_tags_its_corpus_and_rejects_unknown_presets() {
        let base = run_search_with(Scale::Test, tiny_config(7)).expect("search");
        assert_eq!(base.guard, "default");
        assert!(base.corpus.iter().all(|e| e.guard == "default"));
        let warm: Vec<ScenarioSpec> = base.corpus.iter().map(|e| e.spec.clone()).collect();
        let tuned =
            run_search_against(Scale::Test, tiny_config(7), "tuned", &warm).expect("search");
        assert_eq!(tuned.guard, "tuned");
        assert!(!tuned.corpus.is_empty());
        assert!(tuned.corpus.iter().all(|e| e.guard == "tuned"));
        assert!(run_search_against(Scale::Test, tiny_config(7), "nope", &[]).is_err());
    }

    #[test]
    fn sections_carry_the_search_schema() {
        let run = run_search_with(Scale::Test, tiny_config(3)).expect("search");
        let sections = run.sections();
        assert_eq!(sections[0].title, "chaos.search.config");
        assert_eq!(sections[1].title, "chaos.search.progress");
        assert_eq!(sections[2].title, "chaos.search.rank0");
        for field in
            ["candidates_evaluated", "shrink_evals", "shrink_steps", "best_availability_loss"]
        {
            assert!(sections[1].get(field).is_some(), "missing {field}");
        }
        match sections[1].get("best_trajectory") {
            Some(Value::Series(points)) => assert_eq!(points.len(), 3, "one point per eval"),
            other => panic!("expected trajectory series, got {other:?}"),
        }
        // The rank section's embedded spec loads back.
        match sections[2].get("spec") {
            Some(Value::Str(s)) => {
                ScenarioSpec::from_json(s).expect("rank spec parses");
            }
            other => panic!("expected spec string, got {other:?}"),
        }
    }
}
