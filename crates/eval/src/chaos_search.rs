//! The adversarial search wired to the chaos harness: what fault
//! sequence hurts the guarded closed loop the most?
//!
//! `painter_chaos::search` owns the generator/climber/shrinker but is
//! deliberately oracle-agnostic; this module supplies the oracle — every
//! candidate [`ScenarioSpec`] runs a full [`super::chaos::run_campaign`]
//! and is scored on the `painter-closed-loop` strategy's scorecard:
//! availability loss first, worst time-to-recover and rollback churn as
//! tie-breaks. The shrunk winners become [`CorpusEntry`]s, ready to pin
//! under `corpus/` where `tests/chaos_corpus.rs` replays them as
//! regression floors.
//!
//! Everything downstream of the seed is deterministic: the grammar is
//! built from the harness's own [`super::chaos::harness_world_view`],
//! candidates are scored at the search seed, and the `chaos.search.*`
//! sections render byte-identically across same-seed reruns (the CI
//! smoke job diffs two such runs).

use crate::chaos::{harness_world_view, run_campaign_with_guard, ChaosTiming};
use crate::scenario::Scale;
use painter_chaos::{
    search_seeded, CorpusEntry, FaultKind, Grammar, ScenarioSpec, Schedule, SearchConfig,
    SearchOutcome, SearchScore, KIND_COUNT,
};
use painter_core::GuardConfig;
use painter_obs::Section;

/// Post-warmup margin before the earliest sampled fault start, so every
/// candidate is scored against a converged baseline.
const START_MARGIN_S: f64 = 2.0;
/// Tail the grammar keeps fault-free, so recoveries (and DNS TTL
/// boundaries) still land inside the horizon.
const TAIL_S: f64 = 10.0;

/// One finished adversarial search against the chaos harness.
#[derive(Debug, Clone)]
pub struct SearchRun {
    pub scale: Scale,
    pub config: SearchConfig,
    /// The guard preset the oracle defended with (every corpus entry is
    /// tagged with it, so replays run the same guard).
    pub guard: String,
    pub outcome: SearchOutcome,
    /// The shrunk survivors as pinnable corpus entries, worst-first,
    /// renamed `adv-s<seed>-r<k>` (rank-stable names; the spec name
    /// feeds no dynamics, so renaming preserves scores and digests).
    pub corpus: Vec<CorpusEntry>,
}

/// The grammar the harness searches under: every element of the
/// campaign world, fault starts in `[warmup+2, horizon-10]`, default
/// budgets otherwise.
pub fn harness_grammar(timing: &ChaosTiming) -> Grammar {
    Grammar::for_view(
        &harness_world_view(),
        timing.horizon_s,
        timing.warmup_s + START_MARGIN_S,
        (timing.horizon_s - TAIL_S).max(timing.warmup_s + START_MARGIN_S),
    )
}

/// Scores one candidate: a full campaign at `seed` under the default
/// guard, read off the closed-loop strategy.
pub fn campaign_score(
    spec: &ScenarioSpec,
    timing: &ChaosTiming,
    seed: u64,
) -> Result<SearchScore, String> {
    campaign_score_with_guard(spec, timing, seed, &GuardConfig::default())
}

/// [`campaign_score`] defending with an explicit guard config — the
/// oracle the co-evolution loop points at its current best guard.
pub fn campaign_score_with_guard(
    spec: &ScenarioSpec,
    timing: &ChaosTiming,
    seed: u64,
    guard: &GuardConfig,
) -> Result<SearchScore, String> {
    let out = run_campaign_with_guard(spec, timing, seed, guard)?;
    Ok(SearchScore {
        availability_loss: 1.0 - out.closed_loop.availability(),
        worst_ttr_ms: out.closed_loop.worst_ttr_ms(),
        rollbacks: out.learning.rollbacks,
    })
}

/// Runs the full search at `scale` with the standard budget split for
/// `(seed, budget)` (see [`SearchConfig::new`]).
pub fn run_search(scale: Scale, seed: u64, budget: usize) -> Result<SearchRun, String> {
    run_search_with(scale, SearchConfig::new(seed, budget))
}

/// [`run_search`] with explicit budgets, for tests that need tiny runs.
pub fn run_search_with(scale: Scale, config: SearchConfig) -> Result<SearchRun, String> {
    run_search_against(scale, config, "default", &[])
}

/// The fully general search: explicit budgets, an explicit guard preset
/// to defend with, and warm-start specs (an existing corpus) evaluated
/// before any random sampling. `guard` must name a
/// [`GuardConfig::preset`]; the preset name is recorded on every corpus
/// entry so replays defend with the same guard that pinned the floor.
pub fn run_search_against(
    scale: Scale,
    config: SearchConfig,
    guard: &str,
    initial: &[ScenarioSpec],
) -> Result<SearchRun, String> {
    run_search_shaped(scale, config, guard, initial, "adv", |_| {})
}

/// [`run_search_against`] with a grammar hook: `shape` may re-weight
/// fault kinds, raise the recurrence chance, or tighten budgets before
/// sampling starts, and `prefix` names the survivors
/// (`<prefix>-s<seed>-r<rank>`). The corpus farm drives one shaped
/// search per failure-mode class.
pub fn run_search_shaped(
    scale: Scale,
    config: SearchConfig,
    guard: &str,
    initial: &[ScenarioSpec],
    prefix: &str,
    shape: impl Fn(&mut Grammar),
) -> Result<SearchRun, String> {
    let guard_config =
        GuardConfig::preset(guard).ok_or_else(|| format!("unknown guard preset {guard:?}"))?;
    let timing = ChaosTiming::for_scale(scale);
    let mut grammar = harness_grammar(&timing);
    shape(&mut grammar);
    let seed = config.seed;
    let outcome = search_seeded(&grammar, &config, initial, |spec| {
        campaign_score_with_guard(spec, &timing, seed, &guard_config)
    })?;
    let view = harness_world_view();
    let scale_tag = match scale {
        Scale::Test => "test",
        Scale::Paper => "paper",
        Scale::Soak => "soak",
    };
    let corpus = outcome
        .ranked
        .iter()
        .enumerate()
        .map(|(rank, cand)| {
            let mut spec = cand.spec.clone();
            spec.name = format!("{prefix}-s{seed}-r{rank}");
            let digest = Schedule::compile(&spec, &view, seed)?.trace_digest();
            Ok(CorpusEntry {
                seed,
                scale: scale_tag.to_string(),
                availability_floor: 1.0 - cand.score.availability_loss,
                tolerance: config.shrink_tolerance,
                worst_ttr_ms: cand.score.worst_ttr_ms,
                rollbacks: cand.score.rollbacks,
                guard: guard.to_string(),
                trace_fnv1a: digest,
                spec,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(SearchRun { scale, config, guard: guard.to_string(), outcome, corpus })
}

impl SearchRun {
    /// The search as `chaos.search.*` report sections: the budget
    /// config, the progress counters with the best-score trajectory,
    /// and one `chaos.search.rank<k>` section per shrunk survivor.
    pub fn sections(&self) -> Vec<Section> {
        let mut out = Vec::with_capacity(self.corpus.len() + 2);
        out.push(
            Section::new("chaos.search.config")
                .field("seed", self.config.seed)
                .field("budget", self.config.budget)
                .field("explore", self.config.explore)
                .field("keep", self.config.keep)
                .field("shrink_tolerance", self.config.shrink_tolerance)
                .field("max_shrink_evals", self.config.max_shrink_evals)
                .field("guard", self.guard.as_str()),
        );
        let best_loss = self.outcome.worst().map(|c| c.score.availability_loss).unwrap_or(0.0);
        out.push(
            Section::new("chaos.search.progress")
                .field("candidates_evaluated", self.outcome.evaluated)
                .field("shrink_evals", self.outcome.shrink_evals)
                .field("shrink_steps", self.outcome.shrink_steps)
                .field("best_availability_loss", best_loss)
                .field("best_trajectory", self.outcome.trajectory.clone()),
        );
        for (rank, (cand, entry)) in self.outcome.ranked.iter().zip(&self.corpus).enumerate() {
            out.push(
                Section::new(format!("chaos.search.rank{rank}"))
                    .field("name", entry.spec.name.as_str())
                    .field("availability_loss", cand.score.availability_loss)
                    .field("worst_ttr_ms", cand.score.worst_ttr_ms)
                    .field("rollbacks", cand.score.rollbacks)
                    .field("faults", entry.spec.faults.len())
                    .field("trace_fnv1a", format!("{:016x}", entry.trace_fnv1a))
                    .field("spec", entry.spec.to_json().as_str()),
            );
        }
        out
    }

    /// Writes each corpus entry to `<dir>/<spec-name>.json` (the format
    /// `tests/chaos_corpus.rs` replays). Returns the paths written.
    pub fn pin_corpus(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::with_capacity(self.corpus.len());
        for entry in &self.corpus {
            let path = dir.join(format!("{}.json", entry.spec.name));
            std::fs::write(&path, entry.to_json())?;
            paths.push(path);
        }
        Ok(paths)
    }
}

/// [`run_search`] rendered straight to sections, mirroring
/// `chaos::suite_sections` for the figures binary.
pub fn search_sections(scale: Scale, seed: u64, budget: usize) -> Result<Vec<Section>, String> {
    Ok(run_search(scale, seed, budget)?.sections())
}

/// One corpus-farm class: a grammar bias that steers the adversarial
/// search toward a distinct dominant failure mode, so the checked-in
/// corpus covers qualitatively different ways to hurt the closed loop
/// rather than five variations of the same storm.
#[derive(Debug, Clone, Copy)]
pub struct FarmClass {
    /// Class tag, part of every harvested spec name
    /// (`farm-<class>-s<seed>-r0`).
    pub name: &'static str,
    /// What the bias emphasizes, rendered in the farm sections.
    pub focus: &'static str,
    bias: fn(&mut Grammar),
    /// Whether a shrunk survivor still carries the class's failure mode
    /// (shrinking strips faults that contributed no loss, so a surviving
    /// signature fault genuinely hurt). Pinning prefers on-signature
    /// harvests, so the checked-in class entries are what they claim.
    signature: fn(&FarmHarvest) -> bool,
}

// Grammar kind-weight indices (see `painter_chaos::Grammar::kind_weights`):
// 0 session reset, 1 withdraw storm, 2 pop outage, 3 link blackhole,
// 4 latency spike, 5 bursty loss, 6 probe-fleet loss, 7 route leak,
// 8 maintenance drain, 9 probe dark, 10 oscillating repair.
fn bias_leak(g: &mut Grammar) {
    g.kind_weights = [0.3; KIND_COUNT];
    g.kind_weights[7] = 10.0;
    g.kind_weights[1] = 0.6;
}

fn bias_recur(g: &mut Grammar) {
    g.recurrence_chance = 0.9;
    // Short hits that keep coming back, not one long outage.
    g.max_duration_s = 10.0;
}

fn bias_dark(g: &mut Grammar) {
    g.kind_weights = [0.2; KIND_COUNT];
    g.kind_weights[9] = 6.0;
    g.kind_weights[6] = 2.0;
    // Blindness only hurts when something breaks inside the blind
    // window: keep data-plane faults in the mix and let windows overlap.
    g.kind_weights[3] = 2.0;
    g.kind_weights[2] = 1.0;
    g.min_duration_s = 6.0;
    g.overlap_window_s = 25.0;
}

fn counts_kind(h: &FarmHarvest, tag: &str) -> usize {
    h.entry.spec.faults.iter().filter(|f| kind_tag(&f.kind) == tag).count()
}

fn sig_leak(h: &FarmHarvest) -> bool {
    counts_kind(h, "route_leak") >= 1
}

fn sig_recur(h: &FarmHarvest) -> bool {
    h.recurring_faults >= 1
}

fn sig_dark(h: &FarmHarvest) -> bool {
    counts_kind(h, "probe_dark") + counts_kind(h, "probe_fleet_loss") >= 1
}

/// The farmed failure-mode classes.
pub const FARM_CLASSES: &[FarmClass] = &[
    FarmClass {
        name: "leak",
        focus: "route-leak-heavy BGP misdirection",
        bias: bias_leak,
        signature: sig_leak,
    },
    FarmClass {
        name: "recur",
        focus: "recurrence-heavy repeat offenders",
        bias: bias_recur,
        signature: sig_recur,
    },
    FarmClass {
        name: "dark",
        focus: "faults landing inside probe-dark blind windows",
        bias: bias_dark,
        signature: sig_dark,
    },
];

/// One (class, seed) harvest of the corpus farm.
#[derive(Debug, Clone)]
pub struct FarmHarvest {
    pub class: &'static str,
    pub seed: u64,
    /// The shaped search's rank-0 survivor, named
    /// `farm-<class>-s<seed>-r0`.
    pub entry: CorpusEntry,
    /// The most frequent fault kind in the survivor (ties to the first
    /// seen) — the class's failure mode made concrete.
    pub dominant_kind: String,
    /// Faults carrying a recurrence (the `recur` class's signature).
    pub recurring_faults: usize,
    /// Whether the shrunk survivor still carries the class signature.
    pub on_signature: bool,
    /// Whether this harvest is the class's worst (preferring on-signature
    /// harvests) across the seed set — the one [`FarmRun::pin_corpus`]
    /// writes.
    pub picked: bool,
}

/// One finished multi-seed corpus-farm run: every class searched at
/// every seed, per-class worst flagged for pinning.
#[derive(Debug, Clone)]
pub struct FarmRun {
    pub scale: Scale,
    pub guard: String,
    pub budget: usize,
    pub seeds: Vec<u64>,
    pub harvest: Vec<FarmHarvest>,
}

fn kind_tag(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::SessionReset => "session_reset",
        FaultKind::WithdrawStorm { .. } => "withdraw_storm",
        FaultKind::PopOutage { .. } => "pop_outage",
        FaultKind::LinkBlackhole => "link_blackhole",
        FaultKind::LatencySpike { .. } => "latency_spike",
        FaultKind::BurstyLoss { .. } => "bursty_loss",
        FaultKind::ProbeFleetLoss { .. } => "probe_fleet_loss",
        FaultKind::RouteLeak => "route_leak",
        FaultKind::MaintenanceDrain { .. } => "maintenance_drain",
        FaultKind::ProbeDark { .. } => "probe_dark",
        FaultKind::OscillatingRepair { .. } => "oscillating_repair",
        FaultKind::FlashCrowd { .. } => "flash_crowd",
    }
}

fn dominant_kind(spec: &ScenarioSpec) -> String {
    let mut counts: Vec<(&'static str, usize)> = Vec::new();
    for f in &spec.faults {
        let tag = kind_tag(&f.kind);
        match counts.iter_mut().find(|(t, _)| *t == tag) {
            Some((_, n)) => *n += 1,
            None => counts.push((tag, 1)),
        }
    }
    counts.iter().max_by_key(|&&(_, n)| n).map(|&(t, _)| t).unwrap_or("none").to_string()
}

/// Runs the corpus farm: one shaped search per (class, seed), keeping
/// every rank-0 survivor and flagging the per-class worst for pinning.
/// `guard` tags every harvested entry, exactly like the plain search.
pub fn run_corpus_farm(
    scale: Scale,
    seeds: &[u64],
    budget: usize,
    guard: &str,
) -> Result<FarmRun, String> {
    if seeds.is_empty() {
        return Err("corpus farm needs at least one seed".to_string());
    }
    let mut harvest = Vec::with_capacity(FARM_CLASSES.len() * seeds.len());
    for class in FARM_CLASSES {
        let first = harvest.len();
        for &seed in seeds {
            let run = run_search_shaped(
                scale,
                SearchConfig::new(seed, budget),
                guard,
                &[],
                &format!("farm-{}", class.name),
                class.bias,
            )?;
            let Some(entry) = run.corpus.into_iter().next() else {
                return Err(format!("farm class {} seed {seed}: search kept nothing", class.name));
            };
            let mut h = FarmHarvest {
                class: class.name,
                seed,
                dominant_kind: dominant_kind(&entry.spec),
                recurring_faults: entry
                    .spec
                    .faults
                    .iter()
                    .filter(|f| f.recurrence.is_some())
                    .count(),
                entry,
                on_signature: false,
                picked: false,
            };
            h.on_signature = (class.signature)(&h);
            harvest.push(h);
        }
        // Pin the worst floor among on-signature harvests that found real
        // loss; fall back to on-signature, then to the plain worst, when
        // no seed produced a lossy class-mode reproducer.
        let lossy = |i: &usize| {
            let e = &harvest[*i].entry;
            e.availability_floor <= 1.0 - e.tolerance
        };
        let all: Vec<usize> = (first..harvest.len()).collect();
        let on_sig: Vec<usize> = all.iter().copied().filter(|&i| harvest[i].on_signature).collect();
        let sig_lossy: Vec<usize> = on_sig.iter().copied().filter(lossy).collect();
        let pool = [sig_lossy, on_sig, all].into_iter().find(|p| !p.is_empty()).unwrap();
        let worst = pool
            .into_iter()
            .min_by(|&a, &b| {
                harvest[a].entry.availability_floor.total_cmp(&harvest[b].entry.availability_floor)
            })
            .expect("nonempty seed set");
        harvest[worst].picked = true;
    }
    Ok(FarmRun { scale, guard: guard.to_string(), budget, seeds: seeds.to_vec(), harvest })
}

impl FarmRun {
    /// The farm as `chaos.farm.*` sections: the config, then one section
    /// per (class, seed) harvest.
    pub fn sections(&self) -> Vec<Section> {
        let mut out = Vec::with_capacity(self.harvest.len() + 1);
        let seeds = self.seeds.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(",");
        out.push(
            Section::new("chaos.farm.config")
                .field("classes", FARM_CLASSES.len())
                .field("seeds", seeds.as_str())
                .field("budget", self.budget)
                .field("guard", self.guard.as_str()),
        );
        for h in &self.harvest {
            out.push(
                Section::new(format!("chaos.farm.{}.s{}", h.class, h.seed))
                    .field("name", h.entry.spec.name.as_str())
                    .field("availability_floor", h.entry.availability_floor)
                    .field("worst_ttr_ms", h.entry.worst_ttr_ms)
                    .field("rollbacks", h.entry.rollbacks)
                    .field("faults", h.entry.spec.faults.len())
                    .field("recurring_faults", h.recurring_faults)
                    .field("dominant_kind", h.dominant_kind.as_str())
                    .field("on_signature", h.on_signature)
                    .field("picked", h.picked),
            );
        }
        out
    }

    /// Writes each picked (per-class worst) harvest to
    /// `<dir>/<spec-name>.json`, the format `tests/chaos_corpus.rs`
    /// replays. Returns the paths written.
    pub fn pin_corpus(&self, dir: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::new();
        for h in self.harvest.iter().filter(|h| h.picked) {
            let path = dir.join(format!("{}.json", h.entry.spec.name));
            std::fs::write(&path, h.entry.to_json())?;
            paths.push(path);
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use painter_obs::Value;

    fn tiny_config(seed: u64) -> SearchConfig {
        SearchConfig {
            seed,
            budget: 3,
            explore: 2,
            keep: 1,
            shrink_tolerance: 0.01,
            max_shrink_evals: 4,
        }
    }

    // Seed 8 is pinned: within the 3-candidate budget the 11-kind
    // grammar samples a campaign with real availability loss.
    #[test]
    fn tiny_search_replays_byte_identically_and_finds_real_loss() {
        let a = run_search_with(Scale::Test, tiny_config(8)).expect("search");
        let b = run_search_with(Scale::Test, tiny_config(8)).expect("search");
        assert_eq!(a.sections(), b.sections(), "same seed, same sections");
        assert_eq!(a.corpus, b.corpus);
        assert!(!a.corpus.is_empty());
        // The worst survivor genuinely breaks something.
        let worst = a.outcome.worst().expect("nonempty");
        assert!(worst.score.availability_loss > 0.0, "score {:?}", worst.score);
        // Corpus entries round-trip and agree with the ranked scores.
        for (entry, cand) in a.corpus.iter().zip(&a.outcome.ranked) {
            let back = CorpusEntry::from_json(&entry.to_json()).expect("parse");
            assert_eq!(&back, entry);
            assert!(
                (entry.availability_floor - (1.0 - cand.score.availability_loss)).abs() < 1e-12
            );
        }
    }

    #[test]
    fn corpus_farm_harvests_every_class_deterministically() {
        let run = run_corpus_farm(Scale::Test, &[8], 3, "default").expect("farm");
        assert_eq!(run.harvest.len(), FARM_CLASSES.len());
        assert_eq!(run.harvest.iter().filter(|h| h.picked).count(), FARM_CLASSES.len());
        for h in &run.harvest {
            assert!(
                h.entry.spec.name.starts_with(&format!("farm-{}-s", h.class)),
                "{} misnamed",
                h.entry.spec.name
            );
            assert!(!h.entry.spec.faults.is_empty());
            assert_eq!(h.entry.guard, "default");
        }
        let again = run_corpus_farm(Scale::Test, &[8], 3, "default").expect("farm");
        assert_eq!(run.sections(), again.sections(), "farm must replay byte-identically");
        assert!(run_corpus_farm(Scale::Test, &[], 3, "default").is_err());
    }

    #[test]
    fn guarded_search_tags_its_corpus_and_rejects_unknown_presets() {
        let base = run_search_with(Scale::Test, tiny_config(8)).expect("search");
        assert_eq!(base.guard, "default");
        assert!(base.corpus.iter().all(|e| e.guard == "default"));
        let warm: Vec<ScenarioSpec> = base.corpus.iter().map(|e| e.spec.clone()).collect();
        let tuned =
            run_search_against(Scale::Test, tiny_config(8), "tuned", &warm).expect("search");
        assert_eq!(tuned.guard, "tuned");
        assert!(!tuned.corpus.is_empty());
        assert!(tuned.corpus.iter().all(|e| e.guard == "tuned"));
        assert!(run_search_against(Scale::Test, tiny_config(8), "nope", &[]).is_err());
    }

    #[test]
    fn sections_carry_the_search_schema() {
        let run = run_search_with(Scale::Test, tiny_config(3)).expect("search");
        let sections = run.sections();
        assert_eq!(sections[0].title, "chaos.search.config");
        assert_eq!(sections[1].title, "chaos.search.progress");
        assert_eq!(sections[2].title, "chaos.search.rank0");
        for field in
            ["candidates_evaluated", "shrink_evals", "shrink_steps", "best_availability_loss"]
        {
            assert!(sections[1].get(field).is_some(), "missing {field}");
        }
        match sections[1].get("best_trajectory") {
            Some(Value::Series(points)) => assert_eq!(points.len(), 3, "one point per eval"),
            other => panic!("expected trajectory series, got {other:?}"),
        }
        // The rank section's embedded spec loads back.
        match sections[2].get("spec") {
            Some(Value::Str(s)) => {
                ScenarioSpec::from_json(s).expect("rank spec parses");
            }
            other => panic!("expected spec string, got {other:?}"),
        }
    }
}
