//! Bridges [`Figure`]s into [`painter_obs::RunReport`]s.
//!
//! The `figures` binary (and anything else that runs experiment
//! harnesses) uses this to produce one structured, machine-readable
//! report per invocation instead of ad-hoc prints: each figure becomes a
//! [`Section`] carrying its series as data points plus its comparison
//! notes, and the whole run can be rendered as an aligned table or
//! written as JSON.

use crate::Figure;
use painter_obs::{RunReport, Section};

/// Converts one figure into a report section: axes, every series (as
/// `(x, y)` points), and the paper-vs-measured notes.
pub fn figure_section(fig: &Figure) -> Section {
    let mut section = Section::new(fig.id)
        .field("title", fig.title)
        .field("x_label", fig.x_label)
        .field("y_label", fig.y_label);
    for series in &fig.series {
        section = section.field(format!("series:{}", series.name), series.points.clone());
    }
    for (i, note) in fig.notes.iter().enumerate() {
        section = section.field(format!("note_{}", i + 1), note.as_str());
    }
    section
}

/// Builds a run report named `name` from the given figures.
pub fn figures_report(name: impl Into<String>, figures: &[Figure]) -> RunReport {
    let mut report = RunReport::new(name);
    for fig in figures {
        report.push_section(figure_section(fig));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Series;

    fn demo_figure() -> Figure {
        Figure {
            id: "fig6a",
            title: "Latency benefit vs prefix budget",
            x_label: "prefixes",
            y_label: "benefit",
            series: vec![Series::new("painter", vec![(1.0, 2.0), (2.0, 3.0)])],
            notes: vec!["matches paper shape".into()],
        }
    }

    #[test]
    fn figure_becomes_section_with_series_and_notes() {
        let section = figure_section(&demo_figure());
        assert_eq!(section.title, "fig6a");
        match section.get("series:painter") {
            Some(painter_obs::Value::Series(points)) => assert_eq!(points.len(), 2),
            other => panic!("expected series, got {other:?}"),
        }
        match section.get("note_1") {
            Some(painter_obs::Value::Str(s)) => assert!(s.contains("paper")),
            other => panic!("expected note, got {other:?}"),
        }
    }

    #[test]
    fn report_json_contains_every_figure() {
        let report = figures_report("figures", &[demo_figure()]);
        let json = report.to_json();
        let doc = painter_obs::json::parse(&json).expect("valid JSON");
        let sections = doc.get("sections").and_then(|v| v.as_array()).unwrap();
        assert_eq!(sections.len(), 1);
        assert_eq!(sections[0].get("title").and_then(|v| v.as_str()), Some("fig6a"));
        let table = report.render_table();
        assert!(table.contains("fig6a"));
        assert!(table.contains("series:painter"));
    }
}
