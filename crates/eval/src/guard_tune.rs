//! Guard auto-tuning wired to the chaos harness: co-evolve
//! [`GuardConfig`] against the adversarial corpus.
//!
//! `painter_core::guard::tune` owns the seeded search over guard knobs
//! but is oracle-agnostic; this module supplies the oracle — each
//! candidate config defends a full chaos campaign per scenario in a
//! **pool** (the pinned corpus reproducers at their recorded seeds plus
//! the standard hand-written suite) and is scored on the worst and mean
//! closed-loop availability loss with plan churn as the stability axis.
//!
//! The loop is a two-player arms race, alternating per round:
//!
//! 1. **Adversary phase** — `painter_chaos::search_seeded`, warm-started
//!    from the reproducers already in the pool, attacks the *current
//!    best* guard; new shrunk winners that still hurt join the pool.
//! 2. **Guard phase** — [`tune_search`] re-tunes the guard against the
//!    grown pool. Candidate 0 is always [`GuardConfig::default`], so
//!    the final round's best is never worse than the shipped defaults
//!    on everything the adversary found.
//!
//! After the last round, each guard knob is swept one-at-a-time from
//! the winner to its [`TuneSpace`] bounds and re-scored on the final
//! pool — the `guard.tune.knob.<name>` sections make visible which
//! knobs actually move worst-case availability (not just
//! `required_streak`, the historically load-bearing one).
//!
//! Everything downstream of the seed is deterministic: both phases draw
//! from dedicated [`SimRng`] streams, scores are quantized before
//! comparison, and the `guard.tune.*` sections render byte-identically
//! across same-seed reruns (the CI smoke job diffs two such runs). The
//! winner of the real (paper-scale) run is pinned as
//! [`GuardConfig::tuned`]; `tests/guard_tuned.rs` replays the corpus
//! under both presets to keep the pin honest.

use crate::chaos::{run_campaign_with_guard, standard_suite, ChaosTiming};
use crate::chaos_search::{campaign_score_with_guard, harness_grammar};
use crate::scenario::Scale;
use painter_chaos::{search_seeded, CorpusEntry, ScenarioSpec, SearchConfig};
use painter_core::{tune_search, GuardConfig, GuardScore, TuneConfig, TuneOutcome, TuneSpace};
use painter_obs::Section;

/// One scenario the guard must defend: a fault spec plus the campaign
/// seed it is scored at (corpus entries replay at their pinned seed,
/// suite scenarios at the tune seed).
#[derive(Debug, Clone)]
pub struct PoolCase {
    pub spec: ScenarioSpec,
    pub seed: u64,
}

/// Budgets and seed for one [`run_guard_tune`] co-evolution.
#[derive(Debug, Clone)]
pub struct GuardTuneConfig {
    /// Master seed: every phase derives its stream from it.
    pub seed: u64,
    /// Adversary→guard rounds.
    pub rounds: usize,
    /// Guard-candidate evaluations per guard phase (each evaluation is
    /// one campaign per pool scenario).
    pub tune_budget: usize,
    /// Scenario evaluations per adversary phase.
    pub adversary_budget: usize,
}

impl GuardTuneConfig {
    /// The standard co-evolution: 2 rounds, 12 guard candidates and 8
    /// adversary candidates per round.
    pub fn new(seed: u64) -> GuardTuneConfig {
        GuardTuneConfig { seed, rounds: 2, tune_budget: 12, adversary_budget: 8 }
    }

    /// A seconds-scale budget for CI smoke runs and tests.
    pub fn tiny(seed: u64) -> GuardTuneConfig {
        GuardTuneConfig { seed, rounds: 1, tune_budget: 3, adversary_budget: 2 }
    }
}

/// What one co-evolution round did.
#[derive(Debug, Clone)]
pub struct RoundSummary {
    pub round: usize,
    /// Pool size the guard phase tuned against (after this round's
    /// adversary additions).
    pub pool_size: usize,
    /// Worst availability loss the adversary phase reached against the
    /// round's incoming best guard.
    pub adversary_best_loss: f64,
    /// Shrunk adversary winners admitted to the pool.
    pub new_specs: usize,
    /// The guard phase's best score on the round's pool.
    pub best: GuardScore,
}

/// One finished co-evolution.
#[derive(Debug, Clone)]
pub struct TuneRun {
    pub scale: Scale,
    pub config: GuardTuneConfig,
    /// The final scenario pool (corpus + suite + adversary discoveries).
    pub pool: Vec<PoolCase>,
    pub rounds: Vec<RoundSummary>,
    /// The final guard phase's outcome: its `best()` is the co-evolved
    /// winner, its `baseline` the default config on the same pool.
    pub outcome: TuneOutcome,
    /// The pinned [`GuardConfig::tuned`] preset scored on the final
    /// pool, for drift detection against the checked-in constants.
    pub tuned_score: GuardScore,
    /// One-at-a-time knob sensitivity around the winner, in knob order.
    pub knob_sweeps: Vec<KnobSweep>,
    /// Total campaigns simulated across all phases.
    pub campaigns: usize,
}

/// One knob's sensitivity around the co-evolved winner: the knob pinned
/// to its [`TuneSpace`] bounds with every other knob held at the
/// winner's value, each variant defending the full final pool. A
/// nonzero [`KnobSweep::spread`] on a knob other than `required_streak`
/// is the report-level evidence that the frontier is not a one-knob
/// story — moving that knob alone moves worst-case availability.
#[derive(Debug, Clone)]
pub struct KnobSweep {
    /// Knob name, matching the canonical config-JSON field.
    pub knob: &'static str,
    /// The winner's value for this knob.
    pub base_value: f64,
    /// Worst pool availability loss with the knob at its lower bound.
    pub low_worst_loss: f64,
    /// Worst pool availability loss with the knob at its upper bound.
    pub high_worst_loss: f64,
    /// The winner's own worst pool availability loss, for reference.
    pub best_worst_loss: f64,
    /// Mean pool availability loss with the knob at its lower bound.
    pub low_mean_loss: f64,
    /// Mean pool availability loss with the knob at its upper bound.
    pub high_mean_loss: f64,
    /// The winner's own mean pool availability loss, for reference.
    pub best_mean_loss: f64,
}

fn range3(a: f64, b: f64, c: f64) -> f64 {
    a.max(b).max(c) - a.min(b).min(c)
}

impl KnobSweep {
    /// How far worst-case availability loss moves across
    /// {low, winner, high} — zero means the knob cannot change what the
    /// worst pool adversary extracts.
    pub fn worst_spread(&self) -> f64 {
        range3(self.low_worst_loss, self.high_worst_loss, self.best_worst_loss)
    }

    /// How far mean availability loss moves across {low, winner, high}.
    pub fn mean_spread(&self) -> f64 {
        range3(self.low_mean_loss, self.high_mean_loss, self.best_mean_loss)
    }

    /// Whether the knob moves availability on this pool at all — on
    /// either the worst-case or the mean axis.
    pub fn moves_availability(&self) -> bool {
        self.worst_spread() > 1e-9 || self.mean_spread() > 1e-9
    }
}

/// Scores one guard config across the pool: worst/mean closed-loop
/// availability loss, mean plan churn.
pub fn guard_pool_score(
    pool: &[PoolCase],
    timing: &ChaosTiming,
    guard: &GuardConfig,
) -> Result<GuardScore, String> {
    if pool.is_empty() {
        return Err("empty scenario pool".to_string());
    }
    let mut worst = 0.0f64;
    let mut loss_sum = 0.0;
    let mut churn_sum = 0.0;
    for case in pool {
        let out = run_campaign_with_guard(&case.spec, timing, case.seed, guard)?;
        let loss = 1.0 - out.closed_loop.availability();
        worst = worst.max(loss);
        loss_sum += loss;
        churn_sum += out.learning.plan_churn_rate;
    }
    let n = pool.len() as f64;
    Ok(GuardScore { worst_loss: worst, mean_loss: loss_sum / n, churn: churn_sum / n })
}

/// The initial pool: every corpus reproducer at its pinned seed, then
/// the standard suite at `suite_seed`.
pub fn scenario_pool(
    corpus: &[CorpusEntry],
    timing: &ChaosTiming,
    suite_seed: u64,
) -> Vec<PoolCase> {
    let mut pool: Vec<PoolCase> =
        corpus.iter().map(|e| PoolCase { spec: e.spec.clone(), seed: e.seed }).collect();
    pool.extend(standard_suite(timing).into_iter().map(|spec| PoolCase { spec, seed: suite_seed }));
    pool
}

/// Loads every `*.json` corpus entry under `dir`, sorted by file name
/// (the same order `tests/chaos_corpus.rs` replays).
pub fn load_corpus(dir: &std::path::Path) -> Result<Vec<CorpusEntry>, String> {
    let mut paths: Vec<_> = std::fs::read_dir(dir)
        .map_err(|e| format!("read corpus dir {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
        .collect();
    paths.sort();
    paths
        .iter()
        .map(|p| {
            let text =
                std::fs::read_to_string(p).map_err(|e| format!("read {}: {e}", p.display()))?;
            CorpusEntry::from_json(&text).map_err(|e| format!("parse {}: {e}", p.display()))
        })
        .collect()
}

/// Runs the full co-evolution at `scale` against `corpus`.
pub fn run_guard_tune(
    scale: Scale,
    config: GuardTuneConfig,
    corpus: &[CorpusEntry],
) -> Result<TuneRun, String> {
    let timing = ChaosTiming::for_scale(scale);
    let grammar = harness_grammar(&timing);
    let space = TuneSpace::default();
    // The adversarially-found reproducers (warm-start material) are kept
    // apart from the hand-written suite so pool growth dedups against
    // the right set.
    let mut adv: Vec<PoolCase> =
        corpus.iter().map(|e| PoolCase { spec: e.spec.clone(), seed: e.seed }).collect();
    let suite: Vec<PoolCase> = standard_suite(&timing)
        .into_iter()
        .map(|spec| PoolCase { spec, seed: config.seed })
        .collect();

    let mut best_guard = GuardConfig::default();
    let mut rounds = Vec::with_capacity(config.rounds);
    let mut outcome: Option<TuneOutcome> = None;
    let mut campaigns = 0usize;

    for round in 0..config.rounds.max(1) {
        // --- Adversary phase: attack the incoming best guard (round 0
        // attacks the defaults — the regime the corpus was pinned
        // under), warm-started from up to a third of the budget's worth
        // of known reproducers.
        let adv_seed = config.seed.wrapping_add(0x5EAC_0000).wrapping_add(round as u64);
        let search_cfg = SearchConfig::new(adv_seed, config.adversary_budget);
        let warm_cap = (config.adversary_budget / 3).max(1);
        let warm: Vec<ScenarioSpec> = adv.iter().take(warm_cap).map(|c| c.spec.clone()).collect();
        let defender = best_guard;
        let found = search_seeded(&grammar, &search_cfg, &warm, |spec| {
            campaigns += 1;
            campaign_score_with_guard(spec, &timing, adv_seed, &defender)
        })?;
        let adversary_best_loss = found.worst().map(|c| c.score.availability_loss).unwrap_or(0.0);
        let mut new_specs = 0usize;
        for cand in &found.ranked {
            // Only scenarios that still hurt the defender, and only
            // fault lists the pool doesn't already carry.
            if cand.score.availability_loss <= 0.0 {
                continue;
            }
            let known = adv.iter().chain(&suite).any(|c| c.spec.faults == cand.spec.faults);
            if !known {
                adv.push(PoolCase { spec: cand.spec.clone(), seed: adv_seed });
                new_specs += 1;
            }
        }

        // --- Guard phase: re-tune against the grown pool.
        let pool: Vec<PoolCase> = adv.iter().chain(&suite).cloned().collect();
        let tune_cfg = TuneConfig::new(config.seed.wrapping_add(round as u64), config.tune_budget);
        let tuned = tune_search(&space, &tune_cfg, |guard| {
            campaigns += pool.len();
            guard_pool_score(&pool, &timing, guard)
        })?;
        best_guard = tuned.best().config;
        rounds.push(RoundSummary {
            round,
            pool_size: pool.len(),
            adversary_best_loss,
            new_specs,
            best: tuned.best().score,
        });
        outcome = Some(tuned);
    }

    let outcome = outcome.ok_or("zero-round tune run")?;
    let pool: Vec<PoolCase> = adv.iter().chain(&suite).cloned().collect();
    campaigns += pool.len();
    let tuned_score = guard_pool_score(&pool, &timing, &GuardConfig::tuned())?;

    // One-at-a-time sensitivity sweep around the winner. The winner's
    // own score is already on the final pool (the last guard phase
    // tuned against exactly this pool), so each knob costs two more
    // pool evaluations: its low and high bound.
    let best = outcome.best().clone();
    let mut knob_sweeps = Vec::with_capacity(9);
    for probe in space.knob_probes(&best.config) {
        campaigns += 2 * pool.len();
        let low = guard_pool_score(&pool, &timing, &probe.low)?;
        let high = guard_pool_score(&pool, &timing, &probe.high)?;
        knob_sweeps.push(KnobSweep {
            knob: probe.knob,
            base_value: probe.base_value,
            low_worst_loss: low.worst_loss,
            high_worst_loss: high.worst_loss,
            best_worst_loss: best.score.worst_loss,
            low_mean_loss: low.mean_loss,
            high_mean_loss: high.mean_loss,
            best_mean_loss: best.score.mean_loss,
        });
    }
    Ok(TuneRun { scale, config, pool, rounds, outcome, tuned_score, knob_sweeps, campaigns })
}

impl TuneRun {
    /// The co-evolved winner.
    pub fn best(&self) -> &painter_core::TuneCandidate {
        self.outcome.best()
    }

    /// The run as `guard.tune.*` report sections: config and per-round
    /// counters, the descent trajectory, the default / best / pinned
    /// scores on the final pool, the per-knob sensitivity sweep
    /// (`guard.tune.knobs` summary plus one `guard.tune.knob.<name>`
    /// section per knob), and the repair-vs-stability frontier with one
    /// `guard.tune.point<k>` section per frontier point.
    pub fn sections(&self) -> Vec<Section> {
        let mut out = Vec::with_capacity(
            self.rounds.len() + self.outcome.frontier.len() + self.knob_sweeps.len() + 7,
        );
        out.push(
            Section::new("guard.tune.config")
                .field("seed", self.config.seed)
                .field("rounds", self.config.rounds)
                .field("tune_budget", self.config.tune_budget)
                .field("adversary_budget", self.config.adversary_budget)
                .field("pool_final", self.pool.len())
                .field("campaigns", self.campaigns),
        );
        for r in &self.rounds {
            out.push(
                Section::new(format!("guard.tune.round{}", r.round))
                    .field("pool_size", r.pool_size)
                    .field("adversary_best_loss", r.adversary_best_loss)
                    .field("new_specs", r.new_specs)
                    .field("best_worst_loss", r.best.worst_loss)
                    .field("best_mean_loss", r.best.mean_loss)
                    .field("best_churn", r.best.churn),
            );
        }
        out.push(
            Section::new("guard.tune.progress")
                .field("guards_evaluated", self.outcome.evaluated)
                .field("distinct_configs", self.outcome.all.len())
                .field("best_trajectory", self.outcome.trajectory.clone()),
        );
        out.push(
            score_section("guard.tune.default", &self.outcome.baseline)
                .field("config", GuardConfig::default().to_json().as_str()),
        );
        let best = self.outcome.best();
        out.push(
            score_section("guard.tune.best", &best.score)
                .field("name", best.name.as_str())
                .field("beats_default", best.score.beats(&self.outcome.baseline))
                .field("config", best.config.to_json().as_str()),
        );
        out.push(
            score_section("guard.tune.tuned", &self.tuned_score)
                .field("matches_best", GuardConfig::tuned().to_json() == best.config.to_json())
                .field("config", GuardConfig::tuned().to_json().as_str()),
        );
        let moving = self.knob_sweeps.iter().filter(|s| s.moves_availability()).count();
        let moving_non_streak = self
            .knob_sweeps
            .iter()
            .filter(|s| s.knob != "required_streak" && s.moves_availability())
            .count();
        out.push(
            Section::new("guard.tune.knobs")
                .field("knobs", self.knob_sweeps.len())
                .field("moving", moving)
                .field("moving_non_streak", moving_non_streak),
        );
        for s in &self.knob_sweeps {
            out.push(
                Section::new(format!("guard.tune.knob.{}", s.knob))
                    .field("value", s.base_value)
                    .field("low_worst_loss", s.low_worst_loss)
                    .field("high_worst_loss", s.high_worst_loss)
                    .field("best_worst_loss", s.best_worst_loss)
                    .field("low_mean_loss", s.low_mean_loss)
                    .field("high_mean_loss", s.high_mean_loss)
                    .field("best_mean_loss", s.best_mean_loss)
                    .field("worst_spread", s.worst_spread())
                    .field("mean_spread", s.mean_spread()),
            );
        }
        let points: Vec<(f64, f64)> =
            self.outcome.frontier.iter().map(|c| (c.score.churn, c.score.worst_loss)).collect();
        out.push(
            Section::new("guard.tune.frontier")
                .field("points", self.outcome.frontier.len())
                .field("churn_vs_worst_loss", points),
        );
        for (k, c) in self.outcome.frontier.iter().enumerate() {
            out.push(
                score_section(format!("guard.tune.point{k}"), &c.score)
                    .field("name", c.name.as_str())
                    .field("config", c.config.to_json().as_str()),
            );
        }
        out
    }
}

fn score_section(title: impl Into<String>, score: &GuardScore) -> Section {
    Section::new(title)
        .field("worst_loss", score.worst_loss)
        .field("mean_loss", score.mean_loss)
        .field("churn", score.churn)
}

/// [`run_guard_tune`] rendered straight to sections for the figures
/// binary.
pub fn guard_tune_sections(
    scale: Scale,
    config: GuardTuneConfig,
    corpus: &[CorpusEntry],
) -> Result<Vec<Section>, String> {
    Ok(run_guard_tune(scale, config, corpus)?.sections())
}

#[cfg(test)]
mod tests {
    use super::*;
    use painter_obs::Value;

    #[test]
    fn tiny_co_evolution_is_deterministic_and_carries_the_schema() {
        let a = run_guard_tune(Scale::Test, GuardTuneConfig::tiny(5), &[]).expect("tune");
        let b = run_guard_tune(Scale::Test, GuardTuneConfig::tiny(5), &[]).expect("tune");
        assert_eq!(a.sections(), b.sections(), "same seed, same sections");

        // The winner is never worse than the default baseline.
        assert!(!a.outcome.baseline.beats(&a.best().score));
        assert_eq!(a.rounds.len(), 1);
        assert!(a.campaigns > 0);

        let sections = a.sections();
        assert_eq!(sections[0].title, "guard.tune.config");
        assert_eq!(sections[1].title, "guard.tune.round0");
        assert_eq!(sections[2].title, "guard.tune.progress");
        let titles: Vec<&str> = sections.iter().map(|s| s.title.as_str()).collect();
        for t in [
            "guard.tune.default",
            "guard.tune.best",
            "guard.tune.tuned",
            "guard.tune.knobs",
            "guard.tune.frontier",
        ] {
            assert!(titles.contains(&t), "missing section {t}");
        }

        // One sweep per knob, each scored on the final pool. (Whether a
        // non-streak knob actually moves availability depends on the
        // pool — the corpus-backed integration test in
        // `tests/obs_report.rs` asserts that on the pinned reproducers;
        // the hand-written suite alone is knob-flat at test scale.)
        assert_eq!(a.knob_sweeps.len(), 9, "one sweep per guard knob");
        for s in &a.knob_sweeps {
            assert!(titles.contains(&format!("guard.tune.knob.{}", s.knob).as_str()));
            assert!(s.low_worst_loss >= 0.0 && s.high_worst_loss >= 0.0);
            assert!(s.low_mean_loss >= 0.0 && s.high_mean_loss >= 0.0);
        }
        match sections[2].get("best_trajectory") {
            Some(Value::Series(points)) => {
                assert_eq!(points.len(), a.config.tune_budget, "one point per eval")
            }
            other => panic!("expected trajectory series, got {other:?}"),
        }
        // Frontier sections exist for every frontier point and no point
        // dominates another.
        let n = a.outcome.frontier.len();
        assert!(n >= 1);
        assert!(titles.contains(&format!("guard.tune.point{}", n - 1).as_str()));
        for x in &a.outcome.frontier {
            for y in &a.outcome.frontier {
                assert!(
                    !x.score.dominates(&y.score) || x.config.to_json() == y.config.to_json(),
                    "dominated frontier point"
                );
            }
        }
    }
}
