//! Shared machinery for the figure harnesses.

use crate::scenario::{Scenario, SALT};
use painter_bgp::AdvertConfig;
use painter_core::{infer_compliant_ingresses, OrchestratorInputs};
use painter_geo::metro;
use painter_measure::{
    extrapolate_improvements, GroundTruth, ProbeFleet, TargetDb, TargetDbConfig, UgId,
};
use painter_topology::PeeringId;
use std::collections::HashMap;

/// A scenario plus everything derived from it that the harnesses share.
pub struct World<'a> {
    pub gt: GroundTruth<'a>,
    /// True anycast latency per UG (index-aligned with `scenario.ugs`).
    pub anycast: Vec<Option<f64>>,
    /// The orchestrator's view (believed candidates + weights).
    pub inputs: OrchestratorInputs,
}

/// All peerings of a scenario.
pub fn all_peerings(s: &Scenario) -> Vec<PeeringId> {
    s.deployment.peerings().iter().map(|p| p.id).collect()
}

/// Builds the *direct-measurement* world (the PEERING prototype mode):
/// the cloud advertises for real and pings clients, so believed latencies
/// equal ground truth for every reachable, inferred-compliant ingress.
pub fn world_direct(s: &Scenario) -> World<'_> {
    let mut gt = GroundTruth::compute(&s.net.graph, &s.deployment, &s.ugs, SALT);
    let all = all_peerings(s);
    let anycast: Vec<Option<f64>> =
        s.ugs.iter().map(|u| gt.route_under(&all, u.id).map(|(_, l)| l)).collect();
    let inferred = infer_compliant_ingresses(&s.ugs, &s.deployment, &s.cones);
    let candidates: Vec<Vec<(PeeringId, f64)>> = s
        .ugs
        .iter()
        .zip(&inferred)
        .map(|(u, set)| set.iter().filter_map(|&p| gt.latency(u.id, p).map(|l| (p, l))).collect())
        .collect();
    let inputs = OrchestratorInputs::assemble(&s.ugs, &candidates, &anycast, &s.deployment);
    World { gt, anycast, inputs }
}

/// Builds the *estimated-measurement* world (the Azure mode of §5.1.1):
/// probes cover `probe_coverage` of traffic, per-ingress latencies come
/// from geolocation targets at precision `gp_km` (Appendix B), and
/// non-probe UGs get Appendix-C extrapolated measurements.
pub fn world_estimated(s: &Scenario, probe_coverage: f64, gp_km: f64) -> World<'_> {
    let mut gt = GroundTruth::compute(&s.net.graph, &s.deployment, &s.ugs, SALT);
    let all = all_peerings(s);
    let anycast: Vec<Option<f64>> =
        s.ugs.iter().map(|u| gt.route_under(&all, u.id).map(|(_, l)| l)).collect();
    let fleet = ProbeFleet::select(&s.ugs, probe_coverage, s.seed);
    let targets =
        TargetDb::generate(&s.deployment, &TargetDbConfig { seed: s.seed, ..Default::default() });
    let inferred = infer_compliant_ingresses(&s.ugs, &s.deployment, &s.cones);

    // Extrapolated (Appendix C) latencies for everyone, then restrict to
    // inferred-compliant ingresses with usable targets, passing probe
    // measurements through the target-estimation error model.
    let extrapolated = extrapolate_improvements(&s.ugs, &fleet, &gt, &anycast, 500.0, 10.0, s.seed);
    let mut candidates: Vec<Vec<(PeeringId, f64)>> = Vec::with_capacity(s.ugs.len());
    for (i, ug) in s.ugs.iter().enumerate() {
        let compliant = &inferred[i];
        let mut row: Vec<(PeeringId, f64)> = Vec::new();
        for &(p, lat) in &extrapolated[i] {
            if compliant.binary_search(&p).is_err() || !targets.covered(p, gp_km) {
                continue;
            }
            let believed = targets.estimate(ug.id, p, lat).unwrap_or(lat);
            row.push((p, believed));
        }
        candidates.push(row);
    }
    let inputs = OrchestratorInputs::assemble(&s.ugs, &candidates, &anycast, &s.deployment);
    World { gt, anycast, inputs }
}

/// What a configuration actually delivers, evaluated against ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealizedBenefit {
    /// Σ w(UG) · improvement (ms-weight units).
    pub total: f64,
    /// Benefit as a percentage of the total possible.
    pub percent_of_possible: f64,
    /// Mean improvement (ms) over UGs with non-zero improvement.
    pub mean_improvement_ms: f64,
    /// Mean improvement (ms) over UGs that *could* improve (non-zero
    /// possible benefit) — the paper's "clients that have non-zero
    /// improvement" population, which is fixed across configurations and
    /// therefore comparable between strategies.
    pub mean_over_improvable_ms: f64,
    /// Count of UGs that improved.
    pub improved_ugs: usize,
}

/// Evaluates `config` against ground truth: every UG lands where BGP
/// sends it per prefix and (being steered per flow) uses its best prefix,
/// floored at anycast.
pub fn realized_benefit(
    gt: &mut GroundTruth<'_>,
    anycast: &[Option<f64>],
    config: &AdvertConfig,
) -> RealizedBenefit {
    let ugs = gt.ugs().to_vec();
    // Best landed latency per UG across the config's prefixes.
    let mut best: HashMap<UgId, f64> = HashMap::new();
    let prefix_sets: Vec<Vec<PeeringId>> = config.iter().map(|(_, ps)| ps.to_vec()).collect();
    for set in &prefix_sets {
        for ug in &ugs {
            if let Some((_, lat)) = gt.route_under(set, ug.id) {
                let e = best.entry(ug.id).or_insert(f64::INFINITY);
                *e = e.min(lat);
            }
        }
    }
    let mut total = 0.0;
    let mut possible = 0.0;
    let mut improved_sum = 0.0;
    let mut improved = 0usize;
    let mut improvable = 0usize;
    for (i, ug) in ugs.iter().enumerate() {
        let Some(any) = anycast[i] else { continue };
        let best_possible = gt.best_latency(ug.id).unwrap_or(any);
        possible += ug.weight * (any - best_possible).max(0.0);
        if any - best_possible > 0.0 {
            improvable += 1;
        }
        let landed = best.get(&ug.id).copied().unwrap_or(f64::INFINITY);
        let imp = (any - landed).max(0.0);
        total += ug.weight * imp;
        if imp > 0.0 {
            improved_sum += imp;
            improved += 1;
        }
    }
    RealizedBenefit {
        total,
        percent_of_possible: if possible > 0.0 { 100.0 * total / possible } else { 0.0 },
        mean_improvement_ms: if improved > 0 { improved_sum / improved as f64 } else { 0.0 },
        mean_over_improvable_ms: if improvable > 0 {
            improved_sum / improvable as f64
        } else {
            0.0
        },
        improved_ugs: improved,
    }
}

/// Per-PoP ingress volume under a ground-truth anycast solve; used by the
/// granularity analysis (Fig. 9a) and path counting (Fig. 11a).
pub fn anycast_pop_volumes(
    s: &Scenario,
    gt: &mut GroundTruth<'_>,
) -> HashMap<painter_topology::PopId, f64> {
    let all = all_peerings(s);
    let mut volumes = HashMap::new();
    for ug in &s.ugs {
        if let Some((ingress, _)) = gt.route_under(&all, ug.id) {
            *volumes.entry(s.deployment.peering(ingress).pop).or_insert(0.0) += ug.weight;
        }
    }
    volumes
}

/// Weighted fraction of region traffic that ingresses at each PoP, per
/// region — Fig. 11a's "PoPs at which 90% of user traffic in that UG's
/// geographic region ingress".
pub fn region_pop_coverage(
    s: &Scenario,
    gt: &mut GroundTruth<'_>,
    coverage: f64,
) -> HashMap<painter_geo::Region, Vec<painter_topology::PopId>> {
    let all = all_peerings(s);
    // region -> pop -> weight
    let mut per_region: HashMap<painter_geo::Region, HashMap<painter_topology::PopId, f64>> =
        HashMap::new();
    for ug in &s.ugs {
        let region = metro(ug.metro).region;
        if let Some((ingress, _)) = gt.route_under(&all, ug.id) {
            *per_region
                .entry(region)
                .or_default()
                .entry(s.deployment.peering(ingress).pop)
                .or_insert(0.0) += ug.weight;
        }
    }
    per_region
        .into_iter()
        .map(|(region, pops)| {
            let total: f64 = pops.values().sum();
            let mut ranked: Vec<(painter_topology::PopId, f64)> = pops.into_iter().collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then(a.0.cmp(&b.0)));
            let mut kept = Vec::new();
            let mut acc = 0.0;
            for (pop, w) in ranked {
                kept.push(pop);
                acc += w;
                if acc >= coverage * total {
                    break;
                }
            }
            (region, kept)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scale;
    use painter_bgp::PrefixId;

    #[test]
    fn direct_world_has_consistent_sizes() {
        let s = Scenario::peering_like(Scale::Test, 3);
        let w = world_direct(&s);
        assert_eq!(w.anycast.len(), s.ugs.len());
        assert!(!w.inputs.ugs.is_empty());
        assert!(w.inputs.total_possible_benefit() > 0.0);
    }

    #[test]
    fn estimated_world_has_fewer_candidates_than_direct() {
        let s = Scenario::azure_like(Scale::Test, 3);
        let d = world_direct(&s);
        let e = world_estimated(&s, 0.47, 450.0);
        let cand = |w: &World| -> usize { w.inputs.ugs.iter().map(|u| u.candidates.len()).sum() };
        assert!(
            cand(&e) <= cand(&d),
            "target coverage must not add candidates: {} > {}",
            cand(&e),
            cand(&d)
        );
    }

    #[test]
    fn realized_benefit_of_anycast_only_is_zero() {
        let s = Scenario::peering_like(Scale::Test, 4);
        let mut w = world_direct(&s);
        let config = AdvertConfig::anycast(&s.deployment, PrefixId(0));
        let r = realized_benefit(&mut w.gt, &w.anycast, &config);
        // Advertising only the anycast prefix reproduces the default:
        // nothing improves.
        assert!(r.percent_of_possible < 1e-9, "{r:?}");
    }

    #[test]
    fn one_per_peering_full_budget_reaches_everything() {
        let s = Scenario::peering_like(Scale::Test, 5);
        let mut w = world_direct(&s);
        let config = painter_core::one_per_peering(&s.deployment, Some(&w.inputs), usize::MAX);
        let r = realized_benefit(&mut w.gt, &w.anycast, &config);
        assert!(r.percent_of_possible > 99.0, "{r:?}");
    }

    #[test]
    fn pop_volumes_cover_all_traffic() {
        let s = Scenario::peering_like(Scale::Test, 6);
        let mut w = world_direct(&s);
        let volumes = anycast_pop_volumes(&s, &mut w.gt);
        let total: f64 = volumes.values().sum();
        let weight: f64 = s.ugs.iter().map(|u| u.weight).sum();
        assert!((total - weight).abs() / weight < 0.01);
    }

    #[test]
    fn region_coverage_returns_pops_per_region() {
        let s = Scenario::peering_like(Scale::Test, 7);
        let mut w = world_direct(&s);
        let cover = region_pop_coverage(&s, &mut w.gt, 0.9);
        assert!(!cover.is_empty());
        for pops in cover.values() {
            assert!(!pops.is_empty());
        }
    }
}
