//! Experiment harnesses reproducing every figure of the PAINTER paper.
//!
//! Each `figs::figN` module builds its scenario, runs the experiment, and
//! returns a [`Figure`]: named data series (the same series the paper
//! plots) plus notes comparing the measured shape against the paper's
//! claims. The `figures` binary prints them; `EXPERIMENTS.md` records the
//! outcomes.
//!
//! Every harness accepts a [`Scale`]: `Test` runs in seconds for CI,
//! `Paper` uses evaluation-size inputs (run in release).

pub mod chaos;
pub mod chaos_search;
pub mod figs;
pub mod guard_tune;
pub mod helpers;
pub mod incidents;
pub mod lp_gap;
pub mod report;
pub mod scale;
pub mod scenario;
pub mod soak;

pub use helpers::{realized_benefit, RealizedBenefit};
pub use report::{figure_section, figures_report};
pub use scenario::{Scale, Scenario};

/// One plottable series: `(x, y)` points under a legend name.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series { name: name.into(), points }
    }
}

/// A reproduced figure: identifier, axes, series, and comparison notes.
#[derive(Debug, Clone)]
pub struct Figure {
    /// e.g. "fig6a".
    pub id: &'static str,
    pub title: &'static str,
    pub x_label: &'static str,
    pub y_label: &'static str,
    pub series: Vec<Series>,
    /// Human-readable observations (paper claim vs measured).
    pub notes: Vec<String>,
}

impl Figure {
    /// Renders a one-row markdown summary (id, title, notes) for report
    /// generation; `figures all --markdown` stitches these into an
    /// EXPERIMENTS-style table.
    pub fn render_markdown_row(&self) -> String {
        let notes = self.notes.iter().map(String::as_str).collect::<Vec<_>>().join("<br>");
        format!("| {} | {} | {} |", self.id, self.title, notes)
    }

    /// Renders the figure as aligned text (series as CSV blocks).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("x: {} | y: {}\n", self.x_label, self.y_label));
        for s in &self.series {
            out.push_str(&format!("-- series: {}\n", s.name));
            for (x, y) in &s.points {
                out.push_str(&format!("{x:.4},{y:.4}\n"));
            }
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_renders_all_parts() {
        let fig = Figure {
            id: "figX",
            title: "demo",
            x_label: "x",
            y_label: "y",
            series: vec![Series::new("a", vec![(1.0, 2.0)])],
            notes: vec!["hello".into()],
        };
        let text = fig.render();
        assert!(text.contains("figX"));
        assert!(text.contains("series: a"));
        assert!(text.contains("1.0000,2.0000"));
        assert!(text.contains("note: hello"));
    }
}
