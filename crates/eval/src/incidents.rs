//! Incident attribution: folding the causal trace into per-fault records.
//!
//! A chaos campaign records [`TraceEvent`]s from every layer it drives —
//! fault spans from the injector, withdraw/announce dynamics from BGP,
//! probe losses and failovers from the Traffic Manager, quarantine /
//! hysteresis / rollback decisions from the guard layer, plan commits
//! from the closed loop — each linked to the event that caused it. This
//! module answers the operator's question: *which fault explains this
//! availability dip, and how long did each stage of the response take?*
//!
//! [`attribute`] walks every event's cause chain back to its
//! [`TraceKind::FaultStart`] root and folds the stream into one
//! [`Incident`] per injected fault: detection latency (first causally
//! rooted loss-of-liveness), failover latency (first rooted tunnel
//! switch), repair latency (first rooted recovery edge), blast radius
//! (distinct tunnels dead plus bystander UGs rerouted), and which
//! mechanism recovered it. A fault none of whose consequences were ever
//! observed is *explicitly* marked `observed = false` rather than
//! silently dropped — the attribution is total over the spec's fault
//! list.
//!
//! Everything here is a pure function of the recorded events and the
//! compiled schedule, so incident reports — and the rendered timeline's
//! FNV-1a digest — are byte-identical across same-seed replays. Under
//! `obs-off` the event stream is empty and every incident reports
//! unobserved, but the section schema (titles and field names) is
//! unchanged, so report consumers never fork on build mode.

use painter_chaos::{FaultKind, ScenarioSpec, Schedule};
use painter_obs::{Section, TraceEvent, TraceKind};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// One injected fault's observed story, derived from the causal trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Index into the source spec's fault list.
    pub fault: usize,
    /// The fault's spec label.
    pub name: String,
    /// The fault kind's canonical JSON tag (e.g. `pop_outage`).
    pub kind: String,
    /// First injection of this fault (ms on the campaign clock); `-1`
    /// if every injection fell past the horizon.
    pub start_ms: f64,
    /// Last injection (the recovery edge, usually); `-1` when the fault
    /// has a single surviving injection (recovery dropped).
    pub end_ms: f64,
    /// Distinct tunnels the fault demonstrably killed or starved
    /// (causally rooted `tm.tunnel_dead` / `tm.probe_lost`).
    pub blast_tunnels: u64,
    /// Bystander user groups whose ingress moved (or died) during the
    /// fault window, plus the primary UG when the fault was detected.
    pub blast_ugs: u64,
    /// Fault start → first rooted loss-of-liveness (ms); `-1` if never
    /// detected.
    pub detection_ms: f64,
    /// Fault start → first rooted tunnel failover (ms); `-1` if none.
    pub failover_ms: f64,
    /// Fault start → first rooted recovery edge (tunnel revival, session
    /// restore, re-announce, leak end) (ms); `-1` if none landed.
    pub repair_ms: f64,
    /// What brought service back: `closed-loop-repair` (a plan commit
    /// landed inside the fault window), `fault-clearance` (a dead tunnel
    /// revived), `bgp-reconvergence` (session/announce recovery), or
    /// `none`.
    pub recovered_by: String,
    /// Whether *any* consequence of the fault was causally observed.
    pub observed: bool,
}

/// The fault kind's canonical JSON tag (the `type` string the spec
/// parser reads).
pub fn kind_tag(kind: &FaultKind) -> &'static str {
    match kind {
        FaultKind::SessionReset => "session_reset",
        FaultKind::WithdrawStorm { .. } => "withdraw_storm",
        FaultKind::PopOutage { .. } => "pop_outage",
        FaultKind::LinkBlackhole => "link_blackhole",
        FaultKind::LatencySpike { .. } => "latency_spike",
        FaultKind::BurstyLoss { .. } => "bursty_loss",
        FaultKind::ProbeFleetLoss { .. } => "probe_fleet_loss",
        FaultKind::RouteLeak => "route_leak",
        FaultKind::FlashCrowd { .. } => "flash_crowd",
        FaultKind::MaintenanceDrain { .. } => "maintenance_drain",
        FaultKind::ProbeDark { .. } => "probe_dark",
        FaultKind::OscillatingRepair { .. } => "oscillating_repair",
    }
}

/// Follows an event's cause chain to the fault span that roots it.
/// Chains are acyclic by construction (causes point at earlier ids);
/// the hop bound is defense against a malformed stream.
fn root_fault(
    event: &TraceEvent,
    events: &[TraceEvent],
    index: &HashMap<u64, usize>,
) -> Option<usize> {
    let mut cur = event;
    for _ in 0..64 {
        if let TraceKind::FaultStart { fault } = cur.kind {
            return Some(fault as usize);
        }
        if cur.cause == 0 {
            return None;
        }
        cur = events.get(*index.get(&cur.cause)?)?;
    }
    None
}

/// Folds the event stream into one [`Incident`] per spec fault.
///
/// `blast_bystanders[f]` is the harness-sampled count of bystander UGs
/// whose anycast ingress changed during fault `f`'s injection window
/// (pass an empty slice when bystanders were not sampled).
pub fn attribute(
    spec: &ScenarioSpec,
    schedule: &Schedule,
    events: &[TraceEvent],
    blast_bystanders: &[u64],
) -> Vec<Incident> {
    let index: HashMap<u64, usize> = events.iter().enumerate().map(|(i, e)| (e.id, i)).collect();
    let roots: Vec<Option<usize>> = events.iter().map(|e| root_fault(e, events, &index)).collect();

    spec.faults
        .iter()
        .enumerate()
        .map(|(f, fault_spec)| {
            // Injection window from the compiled schedule — available in
            // both build modes, unlike the trace span events.
            let mut first_ns: Option<u64> = None;
            let mut last_ns: Option<u64> = None;
            for inj in schedule.injections().iter().filter(|i| i.fault == f) {
                let at = inj.at.as_nanos();
                if first_ns.is_none() {
                    first_ns = Some(at);
                }
                last_ns = Some(at);
            }
            let start_ns = first_ns.unwrap_or(0);
            // The window a recovery must land in: up to the fault's last
            // injection, or the horizon when the recovery edge was
            // dropped past it.
            let window_end_ns = match (first_ns, last_ns) {
                (Some(a), Some(b)) if b > a => b,
                _ => schedule.horizon.as_nanos(),
            };

            let rel_ms = |at: u64| (at.saturating_sub(start_ns)) as f64 / 1e6;
            let mut detection = -1.0f64;
            let mut failover = -1.0f64;
            let mut repair = -1.0f64;
            let mut observed = false;
            let mut dead_tunnels: Vec<u32> = Vec::new();
            for (event, root) in events.iter().zip(&roots) {
                if *root != Some(f) {
                    continue;
                }
                match event.kind {
                    TraceKind::FaultStart { .. } | TraceKind::FaultEnd { .. } => continue,
                    TraceKind::TunnelDead { tunnel } | TraceKind::ProbeLost { tunnel } => {
                        if detection < 0.0 {
                            detection = rel_ms(event.at_nanos);
                        }
                        if !dead_tunnels.contains(&tunnel) {
                            dead_tunnels.push(tunnel);
                        }
                    }
                    TraceKind::Failover { .. } if failover < 0.0 => {
                        failover = rel_ms(event.at_nanos);
                    }
                    TraceKind::TunnelRevived { .. }
                    | TraceKind::BgpSessionUp { .. }
                    | TraceKind::BgpAnnounce { .. }
                    | TraceKind::BgpLeakEnd { .. }
                        if repair < 0.0 && event.at_nanos >= start_ns =>
                    {
                        repair = rel_ms(event.at_nanos);
                    }
                    _ => {}
                }
                observed = true;
            }

            let plan_commit_in_window = events.iter().any(|e| {
                matches!(e.kind, TraceKind::PlanCommit { .. })
                    && e.at_nanos >= start_ns
                    && e.at_nanos <= window_end_ns
            });
            let rooted = |pred: &dyn Fn(&TraceKind) -> bool| {
                events
                    .iter()
                    .zip(&roots)
                    .any(|(e, r)| *r == Some(f) && pred(&e.kind) && e.at_nanos >= start_ns)
            };
            let recovered_by = if !observed {
                "none"
            } else if plan_commit_in_window {
                "closed-loop-repair"
            } else if rooted(&|k| matches!(k, TraceKind::TunnelRevived { .. })) {
                "fault-clearance"
            } else if rooted(&|k| {
                matches!(k, TraceKind::BgpSessionUp { .. } | TraceKind::BgpAnnounce { .. })
            }) {
                "bgp-reconvergence"
            } else {
                "none"
            };

            let bystanders = blast_bystanders.get(f).copied().unwrap_or(0);
            Incident {
                fault: f,
                name: fault_spec.name.clone(),
                kind: kind_tag(&fault_spec.kind).to_string(),
                start_ms: first_ns.map(|ns| ns as f64 / 1e6).unwrap_or(-1.0),
                end_ms: match (first_ns, last_ns) {
                    (Some(a), Some(b)) if b > a => b as f64 / 1e6,
                    _ => -1.0,
                },
                blast_tunnels: dead_tunnels.len() as u64,
                blast_ugs: bystanders + u64::from(detection >= 0.0),
                detection_ms: detection,
                failover_ms: failover,
                repair_ms: repair,
                recovered_by: recovered_by.to_string(),
                observed,
            }
        })
        .collect()
}

/// The `chaos.<campaign>.incidents` summary plus one
/// `chaos.<campaign>.incident<k>` section per fault (schema pinned by
/// `tests/obs_report.rs`).
pub fn incident_sections(campaign: &str, incidents: &[Incident]) -> Vec<Section> {
    let observed = incidents.iter().filter(|i| i.observed).count();
    let mean = |pick: fn(&Incident) -> f64| {
        let vals: Vec<f64> = incidents.iter().map(pick).filter(|&v| v >= 0.0).collect();
        if vals.is_empty() {
            -1.0
        } else {
            vals.iter().sum::<f64>() / vals.len() as f64
        }
    };
    let mut kind_counts: BTreeMap<&str, usize> = BTreeMap::new();
    for inc in incidents {
        *kind_counts.entry(inc.kind.as_str()).or_default() += 1;
    }
    let kinds = kind_counts.iter().map(|(k, c)| format!("{k}:{c}")).collect::<Vec<_>>().join(",");

    let mut out = Vec::with_capacity(incidents.len() + 1);
    out.push(
        Section::new(format!("chaos.{campaign}.incidents"))
            .field("faults", incidents.len())
            .field("observed", observed)
            .field("unobserved", incidents.len() - observed)
            .field("detection_mean_ms", mean(|i| i.detection_ms))
            .field("failover_mean_ms", mean(|i| i.failover_ms))
            .field("repair_mean_ms", mean(|i| i.repair_ms))
            .field("blast_ugs_total", incidents.iter().map(|i| i.blast_ugs).sum::<u64>())
            .field("kinds", kinds.as_str()),
    );
    for (k, inc) in incidents.iter().enumerate() {
        out.push(
            Section::new(format!("chaos.{campaign}.incident{k}"))
                .field("fault", inc.fault)
                .field("name", inc.name.as_str())
                .field("kind", inc.kind.as_str())
                .field("start_ms", inc.start_ms)
                .field("end_ms", inc.end_ms)
                .field("blast_tunnels", inc.blast_tunnels)
                .field("blast_ugs", inc.blast_ugs)
                .field("detection_ms", inc.detection_ms)
                .field("failover_ms", inc.failover_ms)
                .field("repair_ms", inc.repair_ms)
                .field("recovered_by", inc.recovered_by.as_str())
                .field("observed", inc.observed),
        );
    }
    out
}

fn opt_ms(v: f64) -> String {
    if v < 0.0 {
        "n/a".to_string()
    } else {
        format!("+{v:.0}ms")
    }
}

/// The human-readable flight-recorder readout: every trace event in
/// deterministic `(time, id)` order with its cause link, followed by the
/// per-fault incident summary. `figures explain` prints this and digests
/// it with FNV-1a as the replay receipt.
pub fn render_timeline(
    schedule: &Schedule,
    events: &[TraceEvent],
    incidents: &[Incident],
) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== explain: {} (seed {}, {} events, {} faults) ==",
        schedule.name,
        schedule.seed,
        events.len(),
        incidents.len()
    );
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| (e.at_nanos, e.id));
    for e in &sorted {
        let cause = if e.cause == 0 { String::new() } else { format!("  <- #{}", e.cause) };
        let detail = e.kind.detail();
        let sep = if detail.is_empty() { "" } else { " " };
        let _ = writeln!(
            out,
            "t+{:>11.3}ms  #{:<4} [{:>5}] {}{sep}{detail}{cause}",
            e.at_nanos as f64 / 1e6,
            e.id,
            e.scope,
            e.kind.name(),
        );
    }
    let _ = writeln!(out, "-- incidents --");
    for inc in incidents {
        if inc.observed {
            let _ = writeln!(
                out,
                "fault#{} {} ({}): start={:.0}ms detection={} failover={} repair={} \
                 blast={} tunnels / {} ugs recovered-by={}",
                inc.fault,
                inc.name,
                inc.kind,
                inc.start_ms,
                opt_ms(inc.detection_ms),
                opt_ms(inc.failover_ms),
                opt_ms(inc.repair_ms),
                inc.blast_tunnels,
                inc.blast_ugs,
                inc.recovered_by,
            );
        } else {
            let _ = writeln!(
                out,
                "fault#{} {} ({}): unobserved (no causally-linked events)",
                inc.fault, inc.name, inc.kind,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use painter_bgp::PrefixId;
    use painter_chaos::{FaultSpec, Target, WorldView};
    use painter_topology::{PeeringId, PopId};

    /// A minimal compile world: one PoP, one peering, two single-peering
    /// prefixes (tunnels 0 and 1).
    fn world() -> WorldView {
        WorldView {
            pops: 1,
            peerings: vec![(PeeringId(0), PopId(0))],
            prefixes: vec![(PrefixId(0), vec![PeeringId(0)]), (PrefixId(1), vec![PeeringId(0)])],
        }
    }

    fn two_fault_spec() -> ScenarioSpec {
        ScenarioSpec::new("synthetic", 60.0)
            .fault(
                FaultSpec::new("bh0", FaultKind::LinkBlackhole, Target::Tunnel(0))
                    .at(10.0)
                    .lasting(20.0),
            )
            .fault(
                FaultSpec::new(
                    "spike1",
                    FaultKind::LatencySpike { add_ms: 30.0 },
                    Target::Tunnel(1),
                )
                .at(40.0)
                .lasting(5.0),
            )
    }

    fn ev(id: u64, at_ms: f64, cause: u64, scope: &'static str, kind: TraceKind) -> TraceEvent {
        TraceEvent { id, at_nanos: (at_ms * 1e6) as u64, cause, scope, kind }
    }

    /// A hand-built causal chain: fault span -> tunnel death -> failover,
    /// then a span-rooted revival. The latency spike emits nothing.
    fn synthetic_events() -> Vec<TraceEvent> {
        vec![
            ev(1, 10_000.0, 0, "chaos", TraceKind::FaultStart { fault: 0 }),
            ev(2, 10_150.0, 1, "tm", TraceKind::TunnelDead { tunnel: 0 }),
            ev(3, 10_200.0, 2, "tm", TraceKind::Failover { from: 0, to: 1 }),
            ev(4, 30_000.0, 1, "chaos", TraceKind::FaultEnd { fault: 0 }),
            ev(5, 30_400.0, 1, "tm", TraceKind::TunnelRevived { tunnel: 0 }),
        ]
    }

    #[test]
    fn attribution_follows_cause_chains_to_the_rooting_fault() {
        let spec = two_fault_spec();
        let schedule = Schedule::compile(&spec, &world(), 1).expect("compile");
        let incidents = attribute(&spec, &schedule, &synthetic_events(), &[2, 0]);
        assert_eq!(incidents.len(), 2, "attribution is total over the fault list");

        let bh = &incidents[0];
        assert!(bh.observed);
        assert_eq!(bh.kind, "link_blackhole");
        assert_eq!(bh.name, "bh0");
        assert!((bh.start_ms - 10_000.0).abs() < 1e-6);
        assert!((bh.end_ms - 30_000.0).abs() < 1e-6);
        assert!((bh.detection_ms - 150.0).abs() < 1e-6, "detection {}", bh.detection_ms);
        assert!((bh.failover_ms - 200.0).abs() < 1e-6, "failover {}", bh.failover_ms);
        assert!((bh.repair_ms - 20_400.0).abs() < 1e-6, "repair {}", bh.repair_ms);
        assert_eq!(bh.blast_tunnels, 1);
        // 2 sampled bystanders + the detected primary UG.
        assert_eq!(bh.blast_ugs, 3);
        assert_eq!(bh.recovered_by, "fault-clearance");

        // The spike's consequences were never traced: explicitly
        // unobserved, not silently dropped.
        let spike = &incidents[1];
        assert!(!spike.observed);
        assert_eq!(spike.kind, "latency_spike");
        assert_eq!(spike.detection_ms, -1.0);
        assert_eq!(spike.recovered_by, "none");
        assert_eq!(spike.blast_ugs, 0);
    }

    #[test]
    fn plan_commit_in_window_takes_recovery_precedence() {
        let spec = two_fault_spec();
        let schedule = Schedule::compile(&spec, &world(), 1).expect("compile");
        let mut events = synthetic_events();
        events.push(ev(6, 18_000.0, 0, "plan", TraceKind::PlanCommit { pairs: 6 }));
        let incidents = attribute(&spec, &schedule, &events, &[]);
        assert_eq!(incidents[0].recovered_by, "closed-loop-repair");
    }

    #[test]
    fn empty_stream_reports_every_fault_unobserved_with_stable_schema() {
        let spec = two_fault_spec();
        let schedule = Schedule::compile(&spec, &world(), 1).expect("compile");
        let incidents = attribute(&spec, &schedule, &[], &[]);
        assert_eq!(incidents.len(), 2);
        assert!(incidents.iter().all(|i| !i.observed));
        // Schedule-derived provenance survives without any events.
        assert!((incidents[0].start_ms - 10_000.0).abs() < 1e-6);

        let sections = incident_sections("synthetic", &incidents);
        assert_eq!(sections.len(), 3);
        assert_eq!(sections[0].title, "chaos.synthetic.incidents");
        assert_eq!(sections[1].title, "chaos.synthetic.incident0");
        assert_eq!(sections[2].title, "chaos.synthetic.incident1");
        match sections[0].get("kinds") {
            Some(painter_obs::Value::Str(s)) => {
                assert_eq!(s.as_str(), "latency_spike:1,link_blackhole:1");
            }
            other => panic!("expected kinds string, got {other:?}"),
        }
    }

    #[test]
    fn timeline_renders_deterministically_and_mentions_every_incident() {
        let spec = two_fault_spec();
        let schedule = Schedule::compile(&spec, &world(), 1).expect("compile");
        let events = synthetic_events();
        let incidents = attribute(&spec, &schedule, &events, &[]);
        let a = render_timeline(&schedule, &events, &incidents);
        let b = render_timeline(&schedule, &events, &incidents);
        assert_eq!(a, b);
        assert_eq!(painter_obs::fnv1a(a.as_bytes()), painter_obs::fnv1a(b.as_bytes()));
        assert!(a.contains("fault.start"));
        assert!(a.contains("<- #1"), "cause links are printed:\n{a}");
        assert!(a.contains("bh0"));
        assert!(a.contains("spike1 (latency_spike): unobserved"));
    }
}
