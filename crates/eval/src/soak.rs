//! Long-horizon soak campaigns: days of virtual time under a closed loop.
//!
//! Where [`crate::chaos`] asks "how fast does each strategy recover from
//! one campaign of faults?", the soak harness asks the endurance
//! question: does the guarded learning loop stay healthy over *days* of
//! virtual time, under demand that rotates with the sun, scheduled
//! rolling maintenance, probe-dark bursts, oscillating partial repairs,
//! and — the part a single-loop campaign cannot show — several repair
//! engines proposing *conflicting* candidates over one shared plan.
//!
//! One soak run strings together, per virtual day:
//!
//! * a diurnal demand rotation ([`painter_tm::DiurnalRotator`]) over the
//!   UG population, mass-conserving, plus a flash-crowd-style surge
//!   cohort (one seeded UG per day multiplies its weight);
//! * a rolling maintenance drain ([`painter_chaos::FaultKind::MaintenanceDrain`]
//!   over [`painter_chaos::Target::All`]): each PoP is drained in
//!   sequence with advertised grace;
//! * an anycast blackhole overlapping the drain, so the fallback path is
//!   gone exactly when the per-UG primaries are — the window where only
//!   a committed repair keeps a UG served;
//! * probe-dark bursts ([`painter_chaos::FaultKind::ProbeDark`]) that
//!   blind the monitors in pulses, and an oscillating partial repair
//!   ([`painter_chaos::FaultKind::OscillatingRepair`]) that punishes
//!   commit-on-first-good-sample loops;
//! * background BGP churn (recurring session flaps) and a latency spike.
//!
//! Each user group runs its *own* repair monitor; when several primaries
//! go dark in the same drain window the monitors' candidates conflict,
//! and [`painter_core::RepairArbiter`] decides the round: one winner
//! commits (benefit-at-risk ranking), competitors are deferred inside
//! the winner's mutual-exclusion window, and repeat losers serve a
//! bounded backoff during which their bids are rejected unscored. Every
//! verdict is traced through the flight recorder (`guard.arbiter_*`).
//!
//! Determinism: the world, the compiled schedule, the rotator phases,
//! the surge cohorts, and every arbitration round are pure functions of
//! `(scale, seed)`; [`SoakOutcome::sections`] — including the FNV-1a
//! digest of the per-tick served/weight stream — is byte-identical
//! across same-seed reruns. `tests` below and the CI soak-smoke job
//! both pin that contract.

use crate::chaos::{build_world, prefix_plan};
use crate::scenario::{Scale, SALT};
use painter_bgp::dynamics::{BgpEngine, DynamicsConfig};
use painter_bgp::AdvertConfig;
use painter_chaos::{
    program_bgp_traced, trace_fault_spans, DataPlaneState, FaultEvent, FaultKind, FaultSpec,
    ScenarioSpec, Schedule, Target, WorldView,
};
use painter_core::{
    apply_to_engine, diff, revert_plan, ArbiterConfig, ArbiterVerdict, GuardConfig, HealthSample,
    RepairArbiter, RepairBid, RollbackGuard,
};
use painter_eventsim::{derive_seed, SimRng, SimTime};
use painter_obs::{Section, TraceKind, TraceSink};
use painter_topology::PeeringId;

/// Sampling tick of the soak model loop (seconds). Coarser than the
/// chaos harness's 25 ms grid: a soak trades per-request fidelity for
/// days of horizon.
const TICK_S: f64 = 1.0;
/// Repair-monitor cadence (seconds): one observe→propose→arbitrate
/// round per this much virtual time.
const ITER_S: f64 = 6.0;
/// Consecutive dark monitor rounds before a UG's engine bids a repair.
const DARK_ITERS: u32 = 2;
/// BGP warm-up before ticks start counting toward availability.
const WARMUP_S: f64 = 30.0;
/// Probe-dark fraction at or above which the monitors are blind (no
/// dark-count advance, no bids, no probation verdicts).
const BLIND_FRACTION: f64 = 0.5;
/// Per-round decay of the per-prefix flap memory feeding bid risk.
const FLAP_DECAY: f64 = 0.8;
/// Benefit scale: a bid's benefit is the UG's current share of total
/// demand times this (so surge/diurnal weighting decides contested
/// rounds).
const BENEFIT_SCALE: f64 = 100.0;

/// Seed stream markers (soak-local; disjoint from the harness's).
const SURGE_STREAM: u64 = 0xF1A5;

/// Shape of one soak campaign.
#[derive(Debug, Clone, Copy)]
pub struct SoakConfig {
    /// Virtual days in the campaign.
    pub days: u32,
    /// Seconds per virtual day.
    pub day_s: f64,
    /// Diurnal modulation depth.
    pub amplitude: f64,
    /// Weight multiplier for the daily surge cohort.
    pub surge_factor: f64,
    /// Closed-loop guard preset.
    pub guard: GuardConfig,
    /// Arbitration tuning.
    pub arbiter: ArbiterConfig,
    /// Bounded obs event-ring capacity for the run.
    pub event_capacity: usize,
}

impl SoakConfig {
    /// The campaign shape for a [`Scale`]. `Test` compresses a day to
    /// three hours so the 2-day campaign still covers six hours of
    /// virtual time in seconds of wall clock; `Soak`/`Paper` run two
    /// full 24 h days.
    pub fn for_scale(scale: Scale) -> SoakConfig {
        let (days, day_s) = match scale {
            Scale::Test => (2, 10_800.0),
            Scale::Paper | Scale::Soak => (2, 86_400.0),
        };
        SoakConfig {
            days,
            day_s,
            amplitude: 0.6,
            surge_factor: 3.0,
            guard: GuardConfig::default(),
            arbiter: ArbiterConfig::default(),
            event_capacity: 4 * painter_obs::Registry::DEFAULT_EVENT_CAPACITY,
        }
    }

    /// Campaign horizon (seconds).
    pub fn horizon_s(&self) -> f64 {
        self.days as f64 * self.day_s
    }
}

/// Per-day scorecard of one soak campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakDayStats {
    pub day: u32,
    /// Demand-weighted availability of the fixed plan (primary prefix
    /// with anycast fallback; no repairs).
    pub availability_fixed: f64,
    /// Demand-weighted availability with the arbitrated repair overlay.
    pub availability_loop: f64,
    /// Longest single-UG outage ending this day under the fixed plan
    /// (seconds).
    pub worst_ttr_fixed_s: f64,
    /// Longest single-UG outage ending this day with repairs (seconds).
    pub worst_ttr_loop_s: f64,
    pub arbiter_wins: u64,
    pub arbiter_deferrals: u64,
    pub arbiter_rejections: u64,
    pub commits: u64,
    pub rollbacks: u64,
    /// The UG whose weight surged this day.
    pub surge_ug: u32,
}

impl SoakDayStats {
    fn section(&self) -> Section {
        Section::new(format!("soak.day{}", self.day))
            .field("availability_fixed", self.availability_fixed)
            .field("availability_loop", self.availability_loop)
            .field("worst_ttr_fixed_s", self.worst_ttr_fixed_s)
            .field("worst_ttr_loop_s", self.worst_ttr_loop_s)
            .field("arbiter_wins", self.arbiter_wins)
            .field("arbiter_deferrals", self.arbiter_deferrals)
            .field("arbiter_rejections", self.arbiter_rejections)
            .field("commits", self.commits)
            .field("rollbacks", self.rollbacks)
            .field("surge_ug", self.surge_ug as u64)
    }
}

/// One soak campaign's full result.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakOutcome {
    pub seed: u64,
    pub days: u32,
    pub day_s: f64,
    pub horizon_s: f64,
    pub ugs: u32,
    /// Canonical JSON of the generated scenario spec (provenance).
    pub spec_json: String,
    /// Injection-trace digest of the compiled schedule (replay receipt).
    pub trace_fnv1a: u64,
    /// FNV-1a over the per-tick served/weight stream — the byte-replay
    /// receipt for the *model* loop (schedule digest covers only the
    /// injections).
    pub rows_fnv1a: u64,
    pub day_stats: Vec<SoakDayStats>,
    pub wins_total: u64,
    pub deferrals_total: u64,
    pub rejections_total: u64,
    /// Arbitration rounds with two or more competing bids.
    pub conflict_rounds: u64,
    pub commits_total: u64,
    pub rollbacks_total: u64,
    /// `(prefix, peering)` pairs installed at the horizon.
    pub final_pairs: u64,
    /// Flight-recorder events captured.
    pub events_recorded: u64,
    /// Events the bounded obs ring overwrote.
    pub events_dropped: u64,
}

impl SoakOutcome {
    /// Report sections: `soak.config`, one `soak.day<k>` per day,
    /// `soak.arbitration`, `soak.events`.
    pub fn sections(&self) -> Vec<Section> {
        let mut out = Vec::with_capacity(self.day_stats.len() + 3);
        out.push(
            Section::new("soak.config")
                .field("seed", self.seed)
                .field("days", self.days as u64)
                .field("day_s", self.day_s)
                .field("horizon_s", self.horizon_s)
                .field("tick_s", TICK_S)
                .field("iter_s", ITER_S)
                .field("ugs", self.ugs as u64)
                .field("trace_fnv1a", format!("{:016x}", self.trace_fnv1a))
                .field("spec", self.spec_json.as_str()),
        );
        for day in &self.day_stats {
            out.push(day.section());
        }
        out.push(
            Section::new("soak.arbitration")
                .field("engines", self.ugs as u64)
                .field("wins", self.wins_total)
                .field("deferrals", self.deferrals_total)
                .field("rejections", self.rejections_total)
                .field("conflict_rounds", self.conflict_rounds)
                .field("contention_demonstrated", self.deferrals_total + self.rejections_total > 0),
        );
        out.push(
            Section::new("soak.events")
                .field("rows_fnv1a", format!("{:016x}", self.rows_fnv1a))
                .field("events_recorded", self.events_recorded)
                .field("events_dropped", self.events_dropped)
                .field("commits", self.commits_total)
                .field("rollbacks", self.rollbacks_total)
                .field("final_pairs", self.final_pairs),
        );
        out
    }
}

/// Builds the generated soak scenario: the same fault choreography
/// every day, staggered by day start, with the oscillating-repair and
/// latency-spike tunnels rotating daily.
fn soak_spec(config: &SoakConfig) -> ScenarioSpec {
    let d = config.day_s;
    let mut spec = ScenarioSpec::new("soak", config.horizon_s());
    for day in 0..config.days {
        let at = day as f64 * d;
        let day_tunnel = 1 + (day % 4);
        spec = spec
            .fault(
                FaultSpec::new(
                    format!("d{day}-churn"),
                    FaultKind::SessionReset,
                    Target::Peering(day % 4),
                )
                .at(at + 0.06 * d)
                .lasting(20.0)
                .recurring(0.03 * d, 2, 5.0),
            )
            .fault(
                FaultSpec::new(
                    format!("d{day}-maintenance"),
                    FaultKind::MaintenanceDrain { grace_s: 15.0 },
                    Target::All,
                )
                .at(at + 0.25 * d)
                .lasting(0.2 * d),
            )
            // The anycast tunnel blackholes across the first drain slot:
            // with both the primary and the fallback dark, only an
            // arbitrated repair keeps those UGs served.
            .fault(
                FaultSpec::new(
                    format!("d{day}-anycast-blackhole"),
                    FaultKind::LinkBlackhole,
                    Target::Tunnel(0),
                )
                .at(at + 0.26 * d)
                .lasting(0.10 * d),
            )
            .fault(
                FaultSpec::new(
                    format!("d{day}-probe-dark"),
                    FaultKind::ProbeDark { fraction: 0.9, period_s: 40.0, duty: 0.5 },
                    Target::Fleet,
                )
                .at(at + 0.55 * d)
                .lasting(0.08 * d),
            )
            .fault(
                FaultSpec::new(
                    format!("d{day}-oscillating"),
                    FaultKind::OscillatingRepair { period_s: 40.0, add_ms: 25.0 },
                    Target::Tunnel(day_tunnel),
                )
                .at(at + 0.70 * d)
                .lasting(0.06 * d),
            )
            .fault(
                FaultSpec::new(
                    format!("d{day}-latency"),
                    FaultKind::LatencySpike { add_ms: 30.0 },
                    Target::Tunnel(1 + ((day + 1) % 4)),
                )
                .at(at + 0.85 * d)
                .lasting(120.0),
            );
    }
    spec
}

/// Piecewise-constant probe-dark fraction over the campaign, compiled
/// from the schedule's `ProbeLoss`/`ProbeRestore` injections.
struct ProbeCursor {
    /// `(at, fraction)` transitions, in schedule order.
    transitions: Vec<(SimTime, f64)>,
    next: usize,
    fraction: f64,
}

impl ProbeCursor {
    fn new(schedule: &Schedule) -> ProbeCursor {
        let transitions = schedule
            .injections()
            .iter()
            .filter_map(|inj| match inj.event {
                FaultEvent::ProbeLoss { fraction } => Some((inj.at, fraction)),
                FaultEvent::ProbeRestore => Some((inj.at, 0.0)),
                _ => None,
            })
            .collect();
        ProbeCursor { transitions, next: 0, fraction: 0.0 }
    }

    fn advance(&mut self, now: SimTime) -> f64 {
        while let Some(&(at, f)) = self.transitions.get(self.next) {
            if at > now {
                break;
            }
            self.fraction = f;
            self.next += 1;
        }
        self.fraction
    }
}

/// FNV-1a 64 over a byte stream (same parameters as the schedule's
/// trace digest).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Runs one soak campaign. Everything downstream is a pure function of
/// `(scale, seed)`.
pub fn run_soak(scale: Scale, seed: u64) -> Result<SoakOutcome, String> {
    run_soak_with_config(&SoakConfig::for_scale(scale), seed)
}

/// [`run_soak`] with an explicit campaign shape.
pub fn run_soak_with_config(config: &SoakConfig, seed: u64) -> Result<SoakOutcome, String> {
    let world = build_world();
    let plan = prefix_plan();
    let view = WorldView::from_deployment(&world.deployment, plan.clone());
    let spec = soak_spec(config);
    let schedule = Schedule::compile(&spec, &view, seed)?;
    let horizon_s = config.horizon_s();

    // One UG per New York unicast prefix plus one on London: primaries
    // 1, 2, 3 (prefix 4 stays a repair-only target). The NY pair is what
    // makes drain windows *contested*: both monitors go dark together
    // and bid conflicting candidates in the same round.
    let primaries: [usize; 3] = [1, 2, 3];
    let n_ugs = primaries.len();
    let base_weights = [3.0, 2.0, 1.0];
    let rotator = painter_tm::DiurnalRotator::new(
        n_ugs,
        painter_tm::DiurnalConfig { day_s: config.day_s, amplitude: config.amplitude },
        derive_seed(seed, 6),
    );
    let mut surge_rng = SimRng::stream(derive_seed(seed, 7), SURGE_STREAM);
    let surge_ugs: Vec<u32> =
        (0..config.days).map(|_| (surge_rng.unit() * n_ugs as f64) as u32 % n_ugs as u32).collect();

    // --- Flight recorder + control plane, exactly the chaos harness's
    // shape: one fixed engine carrying the schedule, one repair engine
    // carrying only installer-announced state plus session/leak faults.
    let sink = TraceSink::recording();
    let spans = trace_fault_spans(&schedule, &sink);
    let dynamics = DynamicsConfig { proc_delay_ms: (30.0, 400.0), mrai_secs: (2.0, 8.0), seed };
    let mut engine = BgpEngine::new(&world.graph, &world.deployment, dynamics, SALT);
    engine.set_trace(sink.clone());
    let mut fixed = AdvertConfig::new();
    for (prefix, peerings) in &plan {
        for &pe in peerings {
            fixed.add(*prefix, pe);
            engine.announce(SimTime::ZERO, *prefix, pe);
        }
    }
    program_bgp_traced(&schedule, &mut engine, &spans);
    engine.run_until(SimTime::from_secs(WARMUP_S));
    let base: Vec<f64> = plan
        .iter()
        .map(|(prefix, _)| {
            engine.current_rtt_ms(world.stub, world.stub_metro, *prefix).unwrap_or(100.0)
        })
        .collect();

    let repair_dynamics = DynamicsConfig {
        proc_delay_ms: (30.0, 400.0),
        mrai_secs: (2.0, 8.0),
        seed: derive_seed(seed, 4),
    };
    let mut repair_engine = BgpEngine::new(&world.graph, &world.deployment, repair_dynamics, SALT);
    for inj in schedule.injections() {
        match inj.event {
            FaultEvent::SessionDown { peering } => repair_engine.session_down(inj.at, peering),
            FaultEvent::SessionUp { peering } => repair_engine.session_up(inj.at, peering),
            FaultEvent::LeakStart { peering } => repair_engine.leak_start(inj.at, peering),
            FaultEvent::LeakEnd { peering } => repair_engine.leak_end(inj.at, peering),
            _ => {}
        }
    }

    // --- Guard layer: one shared rollback guard over the shared plan,
    // one arbiter over the per-UG monitors, all reporting into one
    // bounded obs ring and the flight recorder.
    let obs = painter_obs::Registry::with_event_capacity(config.event_capacity);
    let mut rollback = RollbackGuard::with_obs(config.guard.rollback, obs.clone());
    rollback.set_trace(sink.clone());
    let mut arbiter = RepairArbiter::with_obs(config.arbiter, obs.clone());
    arbiter.set_trace(sink.clone());
    let plan_trace = sink.scoped("plan");

    let hold_down = SimTime::from_secs(2.0);
    let mut installed = fixed.clone();
    let mut probation = false;
    let mut baseline_health: Option<HealthSample> = None;
    let mut probe = ProbeCursor::new(&schedule);
    let mut dps = DataPlaneState::new(world.deployment.pops().len(), plan.len());

    let steps = (horizon_s / TICK_S) as usize;
    let iter_ticks = (ITER_S / TICK_S).max(1.0) as usize;
    let warmup_ticks = (WARMUP_S / TICK_S) as usize;
    let ticks_per_day = (config.day_s / TICK_S).max(1.0) as usize;

    let mut dark_iters = vec![0u32; n_ugs];
    let mut flap_memory = vec![0.0f64; plan.len()];
    let mut last_lit = vec![true; plan.len()];
    let mut dark_run_fixed = vec![0usize; n_ugs];
    let mut dark_run_loop = vec![0usize; n_ugs];
    let mut window_rtts: Vec<f64> = Vec::new();
    let mut window_served = 0.0f64;
    let mut window_total = 0.0f64;
    let mut digest = Fnv1a::new();

    let mut day_stats: Vec<SoakDayStats> = (0..config.days)
        .map(|day| SoakDayStats {
            day,
            availability_fixed: 0.0,
            availability_loop: 0.0,
            worst_ttr_fixed_s: 0.0,
            worst_ttr_loop_s: 0.0,
            arbiter_wins: 0,
            arbiter_deferrals: 0,
            arbiter_rejections: 0,
            commits: 0,
            rollbacks: 0,
            surge_ug: surge_ugs[day as usize],
        })
        .collect();
    let mut day_ticks = vec![0u64; config.days as usize];
    let mut conflict_rounds = 0u64;
    let mut commits_total = 0u64;

    for step in 0..steps {
        let t = SimTime::from_secs(step as f64 * TICK_S);
        let day = (step / ticks_per_day).min(config.days as usize - 1);
        engine.run_until(t);
        repair_engine.run_until(t);
        dps.advance(&schedule, t);
        let probe_fraction = probe.advance(t);
        let blind = probe_fraction >= BLIND_FRACTION;

        // Fixed-plan reachability per in-plan prefix, gated by
        // administrative data-plane liveness (same law as the chaos
        // harness).
        let row: Vec<Option<(PeeringId, f64)>> = plan
            .iter()
            .enumerate()
            .map(|(idx, (prefix, _))| {
                if dps.tunnel_down(idx) {
                    return None;
                }
                engine
                    .current_path(world.stub, *prefix)
                    .filter(|(_, ingress)| !dps.pop_down(world.deployment.peering(*ingress).pop))
                    .and_then(|(_, ingress)| {
                        engine
                            .current_rtt_ms(world.stub, world.stub_metro, *prefix)
                            .map(|r| (ingress, r))
                    })
            })
            .collect();
        // Repair overlay onto dark cells only, through the repair
        // engine's installer-announced state.
        let overlay: Vec<Option<(PeeringId, f64)>> = plan
            .iter()
            .enumerate()
            .map(|(idx, (prefix, _))| {
                if row[idx].is_some() || dps.tunnel_down(idx) {
                    return None;
                }
                repair_engine
                    .current_path(world.stub, *prefix)
                    .filter(|(_, ingress)| !dps.pop_down(world.deployment.peering(*ingress).pop))
                    .and_then(|(_, ingress)| {
                        repair_engine
                            .current_rtt_ms(world.stub, world.stub_metro, *prefix)
                            .map(|r| (ingress, r))
                    })
            })
            .collect();

        // Demand weights this tick: diurnal rotation plus the day's
        // surge cohort (a flash crowd adds mass; it is not renormalized
        // away).
        let mut weights = rotator.weights(step as f64 * TICK_S, &base_weights);
        let surge_active = {
            let phase = (step % ticks_per_day) as f64 / ticks_per_day as f64;
            (0.40..0.50).contains(&phase)
        };
        if surge_active {
            weights[surge_ugs[day] as usize] *= config.surge_factor;
        }
        let total: f64 = weights.iter().sum();

        let scoring = step >= warmup_ticks;
        let mut served_fixed = 0.0f64;
        let mut served_loop = 0.0f64;
        for (u, &pidx) in primaries.iter().enumerate() {
            let fixed_ok = row[pidx].is_some() || row[0].is_some();
            let loop_ok = fixed_ok || overlay[pidx].is_some();
            if fixed_ok {
                served_fixed += weights[u];
            }
            if loop_ok {
                served_loop += weights[u];
                if let Some((_, rtt)) = row[pidx].or(row[0]).or(overlay[pidx]) {
                    window_rtts.push(rtt);
                }
            }
            if scoring {
                // Outage-run tracking: a run is attributed to the day it
                // *ends* in (or the last day at the horizon).
                if fixed_ok {
                    if dark_run_fixed[u] > 0 {
                        let ttr = dark_run_fixed[u] as f64 * TICK_S;
                        let d = &mut day_stats[day];
                        d.worst_ttr_fixed_s = d.worst_ttr_fixed_s.max(ttr);
                        dark_run_fixed[u] = 0;
                    }
                } else {
                    dark_run_fixed[u] += 1;
                }
                if loop_ok {
                    if dark_run_loop[u] > 0 {
                        let ttr = dark_run_loop[u] as f64 * TICK_S;
                        let d = &mut day_stats[day];
                        d.worst_ttr_loop_s = d.worst_ttr_loop_s.max(ttr);
                        dark_run_loop[u] = 0;
                    }
                } else {
                    dark_run_loop[u] += 1;
                }
            }
        }
        if scoring {
            day_stats[day].availability_fixed += served_fixed / total;
            day_stats[day].availability_loop += served_loop / total;
            day_ticks[day] += 1;
            window_served += served_loop;
            window_total += total;
            // The byte-replay receipt: served masses and weights, to the
            // bit, every scored tick.
            digest.update(&served_fixed.to_bits().to_le_bytes());
            digest.update(&served_loop.to_bits().to_le_bytes());
            digest.update(&total.to_bits().to_le_bytes());
        }

        // Flap memory for bid risk: decayed count of per-prefix
        // lit/dark transitions.
        for (idx, cell) in row.iter().enumerate() {
            let lit = cell.is_some();
            if lit != last_lit[idx] {
                flap_memory[idx] += 1.0;
                last_lit[idx] = lit;
            }
        }

        // --- Monitor round.
        if step < warmup_ticks || step % iter_ticks != 0 {
            continue;
        }
        for f in flap_memory.iter_mut() {
            *f *= FLAP_DECAY;
        }
        if blind {
            // Probe-dark pulse: no fresh evidence, so no dark-count
            // advance, no bids, and no probation verdict this round.
            window_rtts.clear();
            window_served = 0.0;
            window_total = 0.0;
            continue;
        }

        // Window health feeds probation / the baseline ratchet.
        let availability = if window_total > 0.0 { window_served / window_total } else { 1.0 };
        window_rtts.sort_by(f64::total_cmp);
        let p95 = if window_rtts.is_empty() {
            0.0
        } else {
            window_rtts[(window_rtts.len() - 1) * 95 / 100]
        };
        let health = HealthSample { availability, p95_latency_ms: p95 };
        window_rtts.clear();
        window_served = 0.0;
        window_total = 0.0;
        let mut reverted = false;
        if probation {
            if let Some(good) = rollback.check(t, &health) {
                let ops = revert_plan(&installed, &good, hold_down);
                apply_to_engine(&ops, &mut repair_engine, t);
                installed = good;
                reverted = true;
                day_stats[day].rollbacks += 1;
                plan_trace.emit(
                    t.as_nanos(),
                    rollback.last_rollback_trace(),
                    TraceKind::PlanRevert { pairs: installed.pair_count() as u32 },
                );
            } else {
                rollback.record_good(&installed, health);
                baseline_health = Some(health);
            }
            probation = false;
        } else {
            let holds_up =
                baseline_health.as_ref().map(|b| !rollback.regressed(b, &health)).unwrap_or(true);
            if holds_up {
                rollback.record_good(&installed, health);
                baseline_health = Some(health);
            }
        }

        // Per-UG dark tracking and conflicting bids.
        let weights_now = {
            let mut w = rotator.weights(step as f64 * TICK_S, &base_weights);
            if surge_active {
                w[surge_ugs[day] as usize] *= config.surge_factor;
            }
            w
        };
        let total_now: f64 = weights_now.iter().sum();
        let mut bids: Vec<RepairBid> = Vec::new();
        for (u, &pidx) in primaries.iter().enumerate() {
            let dark = row[pidx].is_none() && overlay[pidx].is_none();
            if dark {
                dark_iters[u] += 1;
            } else {
                dark_iters[u] = 0;
            }
            if reverted || dark_iters[u] < DARK_ITERS {
                continue;
            }
            let prefix = plan[pidx].0;
            let mut candidate = installed.clone();
            let pick = world
                .deployment
                .peerings()
                .iter()
                .filter(|p| !dps.pop_down(p.pop))
                .filter(|p| !candidate.contains(prefix, p.id))
                .map(|p| (p.id, base[p.id.idx() + 1]))
                .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
            let Some((pe, _)) = pick else { continue };
            candidate.add(prefix, pe);
            bids.push(RepairBid {
                engine: u as u32,
                benefit: BENEFIT_SCALE * weights_now[u] / total_now,
                risk: flap_memory[pidx],
                candidate,
            });
        }
        if bids.is_empty() {
            continue;
        }
        if bids.len() > 1 {
            conflict_rounds += 1;
        }
        let verdicts = arbiter.arbitrate(t, &bids);
        for v in &verdicts {
            match v {
                ArbiterVerdict::Won => day_stats[day].arbiter_wins += 1,
                ArbiterVerdict::Deferred => day_stats[day].arbiter_deferrals += 1,
                ArbiterVerdict::Rejected => day_stats[day].arbiter_rejections += 1,
            }
        }
        if let Some(win) = RepairArbiter::winner(&verdicts) {
            let commit = bids[win].candidate.clone();
            if commit != installed && rollback.can_attempt(t) {
                let ops = painter_core::plan(diff(&installed, &commit), hold_down);
                apply_to_engine(&ops, &mut repair_engine, t);
                installed = commit;
                probation = true;
                commits_total += 1;
                day_stats[day].commits += 1;
                dark_iters[bids[win].engine as usize] = 0;
                let commit_ev = plan_trace.emit(
                    t.as_nanos(),
                    arbiter.last_win_trace(),
                    TraceKind::PlanCommit { pairs: installed.pair_count() as u32 },
                );
                plan_trace.emit(t.as_nanos(), commit_ev, TraceKind::ProbationStart);
            }
        }
    }

    // Close any outage runs still open at the horizon.
    for u in 0..n_ugs {
        let last = config.days as usize - 1;
        if dark_run_fixed[u] > 0 {
            let ttr = dark_run_fixed[u] as f64 * TICK_S;
            day_stats[last].worst_ttr_fixed_s = day_stats[last].worst_ttr_fixed_s.max(ttr);
        }
        if dark_run_loop[u] > 0 {
            let ttr = dark_run_loop[u] as f64 * TICK_S;
            day_stats[last].worst_ttr_loop_s = day_stats[last].worst_ttr_loop_s.max(ttr);
        }
    }
    for (day, stats) in day_stats.iter_mut().enumerate() {
        let ticks = day_ticks[day].max(1) as f64;
        stats.availability_fixed /= ticks;
        stats.availability_loop /= ticks;
    }

    Ok(SoakOutcome {
        seed,
        days: config.days,
        day_s: config.day_s,
        horizon_s,
        ugs: n_ugs as u32,
        spec_json: spec.to_json(),
        trace_fnv1a: schedule.trace_digest(),
        rows_fnv1a: digest.0,
        wins_total: day_stats.iter().map(|d| d.arbiter_wins).sum(),
        deferrals_total: day_stats.iter().map(|d| d.arbiter_deferrals).sum(),
        rejections_total: day_stats.iter().map(|d| d.arbiter_rejections).sum(),
        conflict_rounds,
        commits_total,
        rollbacks_total: rollback.rollbacks_total,
        final_pairs: installed.pair_count() as u64,
        events_recorded: sink.events().len() as u64,
        events_dropped: obs.counter("obs.events_dropped").get(),
        day_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn render(outcome: &SoakOutcome) -> String {
        let mut report = painter_obs::RunReport::new("soak");
        for s in outcome.sections() {
            report.push_section(s);
        }
        report.to_json()
    }

    #[test]
    fn soak_covers_six_virtual_hours_at_test_scale() {
        let config = SoakConfig::for_scale(Scale::Test);
        assert!(config.horizon_s() >= 6.0 * 3600.0, "got {}", config.horizon_s());
        assert!(SoakConfig::for_scale(Scale::Soak).horizon_s() >= 2.0 * 86_400.0);
    }

    #[test]
    fn soak_campaign_is_byte_identical_across_reruns() {
        let a = run_soak(Scale::Test, 1).expect("soak");
        let b = run_soak(Scale::Test, 1).expect("soak");
        assert_eq!(a.rows_fnv1a, b.rows_fnv1a, "model-loop stream must replay byte-identically");
        assert_eq!(render(&a), render(&b), "sections must replay byte-identically");
        let c = run_soak(Scale::Test, 2).expect("soak");
        assert_ne!(a.rows_fnv1a, c.rows_fnv1a, "different seeds must differ");
    }

    #[test]
    fn soak_arbitration_sees_contention_and_repairs_help() {
        let out = run_soak(Scale::Test, 1).expect("soak");
        assert_eq!(out.day_stats.len(), 2);
        assert!(out.wins_total >= 1, "at least one repair must win a round");
        assert!(
            out.deferrals_total + out.rejections_total >= 1,
            "a conflicting candidate must be deferred or rejected \
             (wins={} deferrals={} rejections={})",
            out.wins_total,
            out.deferrals_total,
            out.rejections_total,
        );
        assert!(out.conflict_rounds >= 1, "drain windows must produce multi-bid rounds");
        let fixed: f64 = out.day_stats.iter().map(|d| d.availability_fixed).sum();
        let looped: f64 = out.day_stats.iter().map(|d| d.availability_loop).sum();
        assert!(
            looped > fixed,
            "arbitrated repairs must improve availability: loop {looped} vs fixed {fixed}"
        );
        for d in &out.day_stats {
            assert!((0.0..=1.0).contains(&d.availability_fixed));
            assert!((0.0..=1.0).contains(&d.availability_loop));
            assert!(d.availability_loop >= d.availability_fixed - 1e-12);
            assert!(d.worst_ttr_fixed_s >= 0.0 && d.worst_ttr_loop_s >= 0.0);
        }
    }

    #[test]
    fn soak_sections_have_the_pinned_shape() {
        let out = run_soak(Scale::Test, 3).expect("soak");
        let sections = out.sections();
        let titles: Vec<&str> = sections.iter().map(|s| s.title.as_str()).collect();
        assert_eq!(
            titles,
            vec!["soak.config", "soak.day0", "soak.day1", "soak.arbitration", "soak.events"]
        );
        assert!(out.events_recorded > 0, "the flight recorder must capture the campaign");
    }
}
