//! # PAINTER
//!
//! An open-source reproduction of *PAINTER: Ingress Traffic Engineering and
//! Routing for Enterprise Cloud Networks* (SIGCOMM 2023).
//!
//! This umbrella crate re-exports every workspace crate under one roof so
//! examples and integration tests can use a single dependency. See the
//! individual crates for detailed documentation:
//!
//! * [`geo`] — coordinates, fiber latency, world metro database.
//! * [`topology`] — AS-level Internet generator with Gao–Rexford policies.
//! * [`bgp`] — static route solver and dynamic (event-driven) BGP engine.
//! * [`eventsim`] — discrete-event simulation kernel.
//! * [`net`] — packet-level network simulation, UDP tunnels, NAT.
//! * [`dns`] — DNS resolver/client caches and trace analysis.
//! * [`measure`] — vantage-point probes and latency estimation.
//! * [`core`] — the Advertisement Orchestrator and baseline strategies.
//! * [`tm`] — the Traffic Manager (TM-Edge / TM-PoP).
//! * [`chaos`] — deterministic fault injection: declarative scenario
//!   specs compiled into timed injections against the simulators.
//! * [`solve`] — exact LP/MCF baseline: a dependency-free bounded
//!   simplex core plus the capacity-aware flow-placement formulation.
//! * [`eval`] — per-figure experiment harnesses and the chaos
//!   resilience suite.
//! * [`obs`] — telemetry: metrics, spans, structured run reports
//!   (compile with `--features obs-off` to no-op every hot-path probe).

pub use painter_bgp as bgp;
pub use painter_chaos as chaos;
pub use painter_core as core;
pub use painter_dns as dns;
pub use painter_eval as eval;
pub use painter_eventsim as eventsim;
pub use painter_geo as geo;
pub use painter_measure as measure;
pub use painter_net as net;
pub use painter_obs as obs;
pub use painter_solve as solve;
pub use painter_tm as tm;
pub use painter_topology as topology;
