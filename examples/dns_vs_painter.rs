//! Why DNS steering is not enough: TTL violations and coarse control.
//!
//! Reproduces §2.2's motivation interactively: generates flow/DNS traces
//! for three cloud profiles and reports how much traffic outlives its DNS
//! record, then contrasts the control granularity of DNS-based steering
//! with PAINTER's per-flow steering on a synthetic resolver population.
//!
//! ```text
//! cargo run --release --example dns_vs_painter
//! ```

use painter::dns::{
    assign_resolvers, bytes_yet_to_be_sent, generate_trace, CloudProfile, ResolverPopulationConfig,
    TraceConfig,
};
use painter::eval::{Scale, Scenario};

fn main() {
    // --- Part 1: traffic outliving DNS records (Fig. 3's phenomenon).
    println!("traffic still being sent after DNS record expiration:");
    println!("{:<10} {:>10} {:>10} {:>10} {:>10}", "cloud", "+1s", "+1min", "+5min", "+1h");
    for profile in CloudProfile::paper_triple() {
        let trace = generate_trace(&profile, &TraceConfig { seed: 1, flows: 50_000 });
        let curve = bytes_yet_to_be_sent(&trace, &[1.0, 60.0, 300.0, 3600.0]);
        println!(
            "{:<10} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            profile.name,
            curve[0] * 100.0,
            curve[1] * 100.0,
            curve[2] * 100.0,
            curve[3] * 100.0
        );
    }
    println!(
        "\n=> a record update (the only lever DNS steering has) misses all of that traffic;\n\
         PAINTER's TM-Edge switches live flows' successors within one RTT.\n"
    );

    // --- Part 2: steering granularity (Fig. 9a's phenomenon).
    let scenario = Scenario::azure_like(Scale::Test, 33);
    let metros: Vec<_> = scenario.ugs.iter().map(|u| u.metro).collect();
    let population =
        assign_resolvers(&metros, &ResolverPopulationConfig { seed: 33, ..Default::default() });
    let members = population.members();
    let sizes: Vec<usize> = members.iter().map(Vec::len).filter(|n| *n > 0).collect();
    let largest = sizes.iter().max().copied().unwrap_or(0);
    println!(
        "resolver population: {} resolvers for {} UGs; largest resolver serves {} UGs \
         ({:.1}% of all)",
        sizes.len(),
        scenario.ugs.len(),
        largest,
        100.0 * largest as f64 / scenario.ugs.len() as f64
    );
    // How geographically spread is the biggest resolver?
    let (big_idx, _) =
        members.iter().enumerate().max_by_key(|(_, m)| m.len()).expect("non-empty population");
    let mut big_metros: Vec<_> = members[big_idx].iter().map(|&i| metros[i]).collect();
    big_metros.sort();
    big_metros.dedup();
    println!(
        "that resolver's users sit in {} different metros — one DNS answer steers them all \
         to the same prefix; PAINTER steers each flow separately",
        big_metros.len()
    );
}
