//! Advertisement planning: compare PAINTER's allocator against the
//! strategies a cloud would otherwise use, across prefix budgets.
//!
//! This is the Fig. 6a experiment as an interactive tool: it prints the
//! benefit-per-budget table and the per-prefix allocation of the winning
//! configuration, so an operator can see *which* peerings earn prefixes
//! and where reuse happens.
//!
//! ```text
//! cargo run --release --example advertisement_planning
//! ```

use painter::core::{
    one_per_peering, one_per_pop, one_per_pop_with_reuse, ConfigEvaluator, Orchestrator,
    OrchestratorConfig,
};
use painter::eval::helpers::{realized_benefit, world_direct};
use painter::eval::{Scale, Scenario};
use painter::geo::metro;

fn main() {
    let scenario = Scenario::azure_like(Scale::Test, 99);
    let mut world = world_direct(&scenario);
    println!(
        "deployment: {} PoPs, {} ingresses\n",
        scenario.deployment.pops().len(),
        scenario.ingress_count()
    );

    // PAINTER's allocation at a 12-prefix budget.
    let orch = Orchestrator::new(
        world.inputs.clone(),
        OrchestratorConfig { prefix_budget: 12, ..Default::default() },
    );
    let painter_config = orch.compute_config();
    let eval = ConfigEvaluator::new(&orch.inputs, &orch.model);

    println!("benefit at a 12-prefix budget (modeled, % of possible):");
    let pct = |c: &painter::bgp::AdvertConfig| eval.benefit_percent(c).estimated;
    println!("  {:<22} {:>6.1}%", "PAINTER", pct(&painter_config));
    println!(
        "  {:<22} {:>6.1}%",
        "One per Peering",
        pct(&one_per_peering(&scenario.deployment, Some(&orch.inputs), 12))
    );
    println!(
        "  {:<22} {:>6.1}%",
        "One per PoP",
        pct(&one_per_pop(&scenario.deployment, Some(&orch.inputs), 12))
    );
    println!(
        "  {:<22} {:>6.1}%",
        "One per PoP w/Reuse",
        pct(&one_per_pop_with_reuse(&scenario.deployment, Some(&orch.inputs), 12, 3000.0))
    );

    println!("\nPAINTER's allocation ({} prefixes):", painter_config.prefix_count());
    for (prefix, peerings) in painter_config.iter() {
        let sites: Vec<String> = peerings
            .iter()
            .map(|&pe| {
                let p = scenario.deployment.peering(pe);
                format!("{}@{}", p.neighbor, metro(scenario.deployment.pop(p.pop).metro).name)
            })
            .collect();
        println!("  {prefix} -> {}", sites.join(", "));
    }

    // Ground truth check: what would this actually deliver?
    let realized = realized_benefit(&mut world.gt, &world.anycast, &painter_config);
    println!(
        "\nground truth: {:.1}% of possible benefit, {:.1} ms mean improvement, {} UGs improved",
        realized.percent_of_possible, realized.mean_improvement_ms, realized.improved_ugs
    );
}
