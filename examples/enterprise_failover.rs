//! Enterprise failover: the paper's Fig. 1/Fig. 10 story as a runnable
//! program.
//!
//! A branch office's TM-Edge holds tunnels to an anycast prefix and to
//! per-ISP unicast prefixes at two PoPs. We fail the nearby PoP mid-run
//! and watch the Traffic Manager detect the loss within ~1.3 RTT and move
//! traffic to the backup PoP — while BGP is still reconverging.
//!
//! ```text
//! cargo run --release --example enterprise_failover
//! ```

use painter::bgp::PrefixId;
use painter::eventsim::SimTime;
use painter::tm::{TmSimulation, TmSimulationConfig};
use painter::topology::PopId;

fn main() {
    let mut sim = TmSimulation::new(TmSimulationConfig {
        seed: 7,
        send_interval_ms: 10.0,
        probe_interval_ms: 50.0,
        ..Default::default()
    });
    // Tunnels: close PoP via two ISPs (12 ms, 16 ms), far PoP via two
    // ISPs (72 ms, 80 ms), anycast (14 ms — lands at the close PoP).
    let close_isp1 = sim.add_path(PrefixId(1), PopId(0), 12.0);
    let close_isp2 = sim.add_path(PrefixId(2), PopId(0), 16.0);
    let _far_isp1 = sim.add_path(PrefixId(3), PopId(1), 72.0);
    let _far_isp2 = sim.add_path(PrefixId(4), PopId(1), 80.0);
    let anycast = sim.add_path(PrefixId(0), PopId(0), 14.0);

    // The close PoP fails at t = 5 s: its unicast prefixes die instantly;
    // anycast blackholes for a second, then reconverges to the far PoP at
    // higher latency — the behaviour Fig. 10 measures from RIPE RIS.
    let fail = SimTime::from_secs(5.0);
    sim.schedule_path_down(fail, close_isp1);
    sim.schedule_path_down(fail, close_isp2);
    sim.schedule_path_down(fail, anycast);
    sim.schedule_path_rtt(fail + SimTime::from_secs(1.0), anycast, 76.0);

    sim.run(SimTime::from_secs(10.0));

    // Summarize what the client experienced.
    let records = sim.records();
    let lost = records.iter().filter(|r| r.completed.is_none()).count();
    let first_backup = records
        .iter()
        .find(|r| r.sent >= fail && matches!(r.prefix, Some(PrefixId(3) | PrefixId(4))))
        .map(|r| (r.sent - fail).as_ms());
    println!("packets sent: {}, lost: {}", records.len(), lost);
    match first_backup {
        Some(ms) => println!("traffic flowed on the backup PoP {ms:.0} ms after the failure"),
        None => println!("no failover observed (unexpected)"),
    }
    println!("\ntunnel switches:");
    for s in sim.switch_log() {
        println!(
            "  t={:>7.3}s {} -> prefix {}",
            s.at.as_secs(),
            s.from.map(|p| format!("prefix {}", p.0)).unwrap_or_else(|| "(none)".into()),
            s.to.0
        );
    }
    // Mean RTT before and after, from the client's perspective.
    let mean = |pred: &dyn Fn(&painter::tm::PacketRecord) -> bool| {
        let v: Vec<f64> = records.iter().filter(|r| pred(r)).filter_map(|r| r.rtt_ms()).collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    println!(
        "\nmean RTT before failure: {:.1} ms | after failover: {:.1} ms (the far PoP)",
        mean(&|r| r.sent < fail),
        mean(&|r| r.sent > fail + SimTime::from_secs(1.0))
    );
}
