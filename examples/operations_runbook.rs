//! An operator's runbook: diagnose anycast inflation, roll out a PAINTER
//! configuration through the damping-aware installer, and verify the
//! catchment moved.
//!
//! This example strings together the ops-facing surfaces of the library:
//! catchment analysis (`painter::measure::catchment`), the orchestrator,
//! the install planner (`painter::core::installer`), and the dynamic BGP
//! engine that executes the rollout.
//!
//! ```text
//! cargo run --release --example operations_runbook
//! ```

use painter::bgp::dynamics::{BgpEngine, DynamicsConfig};
use painter::bgp::PrefixId;
use painter::core::{diff, plan, Orchestrator, OrchestratorConfig};
use painter::eval::helpers::{all_peerings, world_direct};
use painter::eval::scenario::SALT;
use painter::eval::{Scale, Scenario};
use painter::eventsim::SimTime;
use painter::geo::metro;
use painter::measure::catchment;

fn main() {
    let scenario = Scenario::peering_like(Scale::Test, 7);
    let mut world = world_direct(&scenario);
    let all = all_peerings(&scenario);

    // --- Step 1: diagnose. Where does anycast land everyone today?
    let anycast = catchment(&mut world.gt, &all);
    let cross = anycast.cross_region_share(|pop| metro(scenario.deployment.pop(pop).metro).region);
    println!("anycast catchment across {} PoPs:", anycast.per_pop.len());
    let mut pops: Vec<_> = anycast.per_pop.iter().collect();
    pops.sort_by(|a, b| b.1.partial_cmp(a.1).expect("finite"));
    for (pop, w) in pops.iter().take(5) {
        println!(
            "  {} ({}) carries {:.1}% of traffic",
            pop,
            metro(scenario.deployment.pop(**pop).metro).name,
            100.0 * *w / anycast.total_weight
        );
    }
    println!("cross-region haulage under anycast: {:.1}% of traffic\n", cross * 100.0);

    // --- Step 2: compute the PAINTER configuration.
    let orch = Orchestrator::new(
        world.inputs.clone(),
        OrchestratorConfig { prefix_budget: 8, ..Default::default() },
    );
    let target = orch.compute_config();
    println!(
        "orchestrator proposes {} prefixes over {} sessions",
        target.prefix_count(),
        target.pair_count()
    );

    // --- Step 3: plan the rollout (hold-down spacing avoids route-flap
    // damping) and execute it on the BGP engine.
    let current = painter::bgp::AdvertConfig::new();
    let ops = diff(&current, &target);
    let rollout = plan(ops, SimTime::from_secs(45.0));
    println!(
        "install plan: {} operations over {:.0} s (45 s hold-down per prefix)",
        rollout.len(),
        rollout.duration().as_secs()
    );
    let mut engine =
        BgpEngine::new(&scenario.net.graph, &scenario.deployment, DynamicsConfig::default(), SALT);
    painter::core::apply_to_engine(&rollout, &mut engine, SimTime::ZERO);
    engine.run_until(rollout.duration() + SimTime::from_secs(120.0));

    // --- Step 4: verify. How many UGs now have a live better-than-anycast
    // path in the BGP control plane?
    let mut improved = 0;
    let mut checked = 0;
    for (i, ug) in scenario.ugs.iter().enumerate() {
        let Some(any) = world.anycast[i] else { continue };
        checked += 1;
        let best_now = target
            .prefixes()
            .filter_map(|p| engine.current_rtt_ms(ug.asn, ug.metro, PrefixId(p.0)))
            .fold(f64::INFINITY, f64::min);
        if best_now + ug.last_mile_ms < any - 1.0 {
            improved += 1;
        }
    }
    println!(
        "\npost-rollout: {improved}/{checked} user groups hold a live path that beats \
         anycast (BGP-converged, before any Traffic Manager steering)"
    );
}
