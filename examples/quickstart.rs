//! Quickstart: build a synthetic Internet, deploy a cloud on it, run the
//! Advertisement Orchestrator, and see how much latency PAINTER removes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use painter::bgp::PrefixId;
use painter::core::{GroundTruthEnv, Orchestrator, OrchestratorConfig};
use painter::eval::helpers::{realized_benefit, world_direct};
use painter::eval::{Scale, Scenario};
use painter::measure::UgId;

fn main() {
    // 1. A seeded world: AS-level Internet, cloud PoPs + peerings, user
    //    groups. Same seed, same world — every run reproduces exactly.
    let scenario = Scenario::peering_like(Scale::Test, 42);
    println!(
        "world: {} ASes, {} PoPs, {} peerings (ingresses), {} user groups",
        scenario.net.graph.len(),
        scenario.deployment.pops().len(),
        scenario.ingress_count(),
        scenario.ugs.len()
    );

    // 2. Derive the orchestrator's view: inferred policy-compliant
    //    ingresses and measured latencies (here: direct measurements, as
    //    in the paper's PEERING prototype).
    let mut world = world_direct(&scenario);
    println!(
        "measurement view: {} UGs with candidates, total possible benefit {:.0} (weighted ms)",
        world.inputs.ugs.len(),
        world.inputs.total_possible_benefit()
    );

    // 3. Run Algorithm 1 with learning: advertise, observe where UGs
    //    land, fold the surprises back into the routing model.
    let mut orchestrator = Orchestrator::new(
        world.inputs.clone(),
        OrchestratorConfig {
            prefix_budget: 10,
            d_reuse_km: 3000.0,
            max_iterations: 3,
            ..Default::default()
        },
    );
    let ug_ids: Vec<UgId> = orchestrator.inputs.ugs.iter().map(|u| u.id).collect();
    let report = {
        let mut env = GroundTruthEnv::new(&mut world.gt, ug_ids);
        orchestrator.run(&mut env)
    };
    for (i, iter) in report.iterations.iter().enumerate() {
        println!(
            "iteration {}: {} prefixes, {} pairs, measured benefit {:.0}, mean improvement \
             {:.1} ms, learned {} preferences",
            i + 1,
            iter.config.prefix_count(),
            iter.config.pair_count(),
            iter.measured_benefit,
            iter.measured_mean_improvement_ms,
            iter.newly_learned
        );
    }

    // 4. Evaluate the final configuration against ground truth and
    //    against the classic alternatives.
    let final_config = report.final_config;
    let painter = realized_benefit(&mut world.gt, &world.anycast, &final_config);
    let anycast_only = realized_benefit(
        &mut world.gt,
        &world.anycast,
        &painter::bgp::AdvertConfig::anycast(&scenario.deployment, PrefixId(0)),
    );
    println!(
        "\nPAINTER with {} prefixes: {:.1}% of possible benefit, mean improvement {:.1} ms \
         across {} improved UGs",
        final_config.prefix_count(),
        painter.percent_of_possible,
        painter.mean_improvement_ms,
        painter.improved_ugs
    );
    println!(
        "anycast alone: {:.1}% (by definition — anycast is the baseline)",
        anycast_only.percent_of_possible
    );
}
